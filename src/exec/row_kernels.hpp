#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "sparse/csr.hpp"

/// \file row_kernels.hpp
/// The shared substitution kernels every executor runs per vertex, plus
/// the common vector-shape check. Single definition on purpose: the
/// solver's bitwise-equality contract (multi-RHS columns == independent
/// single-RHS solves, parallel == serial per row) holds because all
/// executors run literally this arithmetic sequence — a divergent copy
/// would break it silently.
///
/// Two kernel families share that sequence:
///   * computeRow / computeRowMulti — the CSR forms, indexing the shared
///     matrix through row_ptr (the StorageKind::kSharedCsr walk);
///   * computeRowPacked / computeRowMultiPacked — raw-pointer forms over a
///     row's packed off-diagonal cols/vals + diagonal (the
///     StorageKind::kSlab walk; see slab.hpp). The multi-RHS form is
///     VECTORIZED ACROSS RHS COLUMNS in fixed-width register blocks
///     (r = 8, then 4, then a variable tail). Blocking the column loop
///     never reorders any single column's floating-point operations —
///     column c still runs init, the same subtractions in the same order,
///     then one divide — so the bitwise contract survives vectorization
///     (tests/test_slab.cpp pins packed == CSR for every executor).

namespace sts::exec::detail {

/// One substitution step; the diagonal is the last entry of the row.
inline void computeRow(std::span<const offset_t> row_ptr,
                       std::span<const index_t> col_idx,
                       std::span<const double> values,
                       std::span<const double> b, std::span<double> x,
                       index_t i) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double acc = b[static_cast<size_t>(i)];
  for (size_t k = begin; k < diag; ++k) {
    acc -= values[k] * x[static_cast<size_t>(col_idx[k])];
  }
  x[static_cast<size_t>(i)] = acc / values[diag];
}

/// Multi-RHS substitution step: row i of X and B are contiguous length-r
/// blocks. Per RHS the arithmetic sequence is identical to computeRow, so
/// each column of the result is bitwise equal to a single-RHS solve.
inline void computeRowMulti(std::span<const offset_t> row_ptr,
                            std::span<const index_t> col_idx,
                            std::span<const double> values,
                            std::span<const double> b, std::span<double> x,
                            index_t i, size_t r) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double* xi = x.data() + static_cast<size_t>(i) * r;
  const double* bi = b.data() + static_cast<size_t>(i) * r;
  for (size_t c = 0; c < r; ++c) xi[c] = bi[c];
  for (size_t e = begin; e < diag; ++e) {
    const double a = values[e];
    const double* xj = x.data() + static_cast<size_t>(col_idx[e]) * r;
    for (size_t c = 0; c < r; ++c) xi[c] -= a * xj[c];
  }
  const double d = values[diag];
  for (size_t c = 0; c < r; ++c) xi[c] /= d;
}

/// Packed-row form of computeRow: `cols`/`vals` are the row's nnz
/// off-diagonal entries in CSR order, `diag` its diagonal. The identical
/// arithmetic sequence, so x[i] is bitwise equal to computeRow's.
inline void computeRowPacked(const index_t* cols, const double* vals,
                             std::size_t nnz, double diag,
                             std::span<const double> b, std::span<double> x,
                             index_t i) {
  double acc = b[static_cast<size_t>(i)];
  for (std::size_t k = 0; k < nnz; ++k) {
    acc -= vals[k] * x[static_cast<size_t>(cols[k])];
  }
  x[static_cast<size_t>(i)] = acc / diag;
}

/// One fixed-width column block of the packed multi-RHS step: columns
/// [c0, c0 + R) of row i, where `bi`/`xi` already point at column c0 of
/// rows i of B/X and `x_blk` at column c0 of X's row 0 (leading dimension
/// r). The accumulators live in registers and the column loops are
/// SIMD-width R, which is the entire point of blocking; per column the
/// operation sequence matches computeRowMulti exactly.
template <std::size_t R>
inline void computeRowMultiPackedFixed(const index_t* cols,
                                       const double* vals, std::size_t nnz,
                                       double diag, const double* bi,
                                       double* xi, const double* x_blk,
                                       std::size_t r) {
  double acc[R];
#pragma omp simd
  for (std::size_t c = 0; c < R; ++c) acc[c] = bi[c];
  for (std::size_t e = 0; e < nnz; ++e) {
    const double a = vals[e];
    const double* xj = x_blk + static_cast<std::size_t>(cols[e]) * r;
#pragma omp simd
    for (std::size_t c = 0; c < R; ++c) acc[c] -= a * xj[c];
  }
#pragma omp simd
  for (std::size_t c = 0; c < R; ++c) xi[c] = acc[c] / diag;
}

/// Packed multi-RHS substitution step, vectorized across the RHS columns:
/// register blocks of 8, then 4, then a variable tail running the
/// computeRowMulti loop shape on the remaining columns. Column c of the
/// result is bitwise equal to computeRowMulti's column c for every r.
inline void computeRowMultiPacked(const index_t* cols, const double* vals,
                                  std::size_t nnz, double diag,
                                  std::span<const double> b,
                                  std::span<double> x, index_t i,
                                  std::size_t r) {
  const double* bi = b.data() + static_cast<std::size_t>(i) * r;
  double* xi = x.data() + static_cast<std::size_t>(i) * r;
  std::size_t c = 0;
  for (; c + 8 <= r; c += 8) {
    computeRowMultiPackedFixed<8>(cols, vals, nnz, diag, bi + c, xi + c,
                                  x.data() + c, r);
  }
  for (; c + 4 <= r; c += 4) {
    computeRowMultiPackedFixed<4>(cols, vals, nnz, diag, bi + c, xi + c,
                                  x.data() + c, r);
  }
  if (c == r) return;
  // Variable tail (r mod 4 columns): computeRowMulti's exact loop,
  // restricted to columns [c, r).
  for (std::size_t cc = c; cc < r; ++cc) xi[cc] = bi[cc];
  for (std::size_t e = 0; e < nnz; ++e) {
    const double a = vals[e];
    const double* xj = x.data() + static_cast<std::size_t>(cols[e]) * r;
    for (std::size_t cc = c; cc < r; ++cc) xi[cc] -= a * xj[cc];
  }
  for (std::size_t cc = c; cc < r; ++cc) xi[cc] /= diag;
}

/// Tiled multi-RHS substitution step over one RHS column tile: `b_tile`
/// and `x_tile` are a contiguous n x w row-major tile (TileLayout,
/// tile.hpp) and `w` its width. Slices the CSR row at row_ptr and runs the
/// register-blocked packed kernel on it — the shared-CSR analogue of the
/// slab walk's computeRowMultiPacked, giving the CSR tile loop the same
/// across-column vectorization. Column c of the tile is bitwise equal to
/// computeRowMulti's column tileBegin + c because blocking never reorders
/// a single column's operations (the file-top contract).
inline void computeRowMultiTiled(std::span<const offset_t> row_ptr,
                                 std::span<const index_t> col_idx,
                                 std::span<const double> values,
                                 std::span<const double> b_tile,
                                 std::span<double> x_tile, index_t i,
                                 std::size_t w) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag =
      static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  computeRowMultiPacked(col_idx.data() + begin, values.data() + begin,
                        diag - begin, values[diag], b_tile, x_tile, i, w);
}

/// ---- SSP (bounded-staleness) kernel variants ---------------------------
///
/// The stale-read guard of the SSP executor (ssp.hpp). The SSP sweep
/// chunks supersteps into blocks of `staleness + 1` and barriers only at
/// chunk boundaries; within a chunk, an operand x[j] whose row belongs to
/// the SAME chunk but a DIFFERENT thread is still being computed, so the
/// guard drops that term from the accumulation — which is exactly reading
/// the refinement iterate's previous value for it (zero on the first
/// sweep of a correction solve). The residual-checked refinement loop
/// feeds every dropped operand back one iteration later, so each such
/// read is at most `staleness` supersteps (one chunk) old: the SSP
/// semantics of the elasticity follow-up paper.
///
/// With staleness 0 the chunk is a single superstep and a valid schedule
/// has no cross-thread same-superstep dependencies, so the guard never
/// fires and every kernel below runs the *identical* arithmetic sequence
/// as its exact sibling above — the s=0 bitwise contract
/// (tests/test_ssp.cpp pins it per scheduler kind x team x storage).
struct SspGuard {
  const index_t* row_step;  ///< row -> superstep of the analyzed schedule
  const int* owner;         ///< row -> folded thread that computes it
  index_t chunk_begin;      ///< first superstep of the executing chunk
  int thread;               ///< the executing folded thread

  /// True when entry (i, j)'s operand is same-chunk and cross-thread:
  /// dependencies always point at earlier supersteps, so `row_step[j] >=
  /// chunk_begin` means row j lives inside the current chunk.
  bool drops(index_t j) const {
    return row_step[static_cast<size_t>(j)] >= chunk_begin &&
           owner[static_cast<size_t>(j)] != thread;
  }
};

/// computeRow with the SSP guard: dropped entries contribute nothing.
/// When the guard never fires the accumulation is bitwise computeRow.
inline void computeRowSsp(std::span<const offset_t> row_ptr,
                          std::span<const index_t> col_idx,
                          std::span<const double> values,
                          std::span<const double> b, std::span<double> x,
                          index_t i, const SspGuard& guard) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag =
      static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double acc = b[static_cast<size_t>(i)];
  for (size_t k = begin; k < diag; ++k) {
    const index_t j = col_idx[k];
    if (guard.drops(j)) continue;
    acc -= values[k] * x[static_cast<size_t>(j)];
  }
  x[static_cast<size_t>(i)] = acc / values[diag];
}

/// computeRowMulti with the SSP guard (the whole entry is dropped, so
/// every RHS column sees the same sparsified operator).
inline void computeRowMultiSsp(std::span<const offset_t> row_ptr,
                               std::span<const index_t> col_idx,
                               std::span<const double> values,
                               std::span<const double> b,
                               std::span<double> x, index_t i, size_t r,
                               const SspGuard& guard) {
  const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
  const auto diag =
      static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
  double* xi = x.data() + static_cast<size_t>(i) * r;
  const double* bi = b.data() + static_cast<size_t>(i) * r;
  for (size_t c = 0; c < r; ++c) xi[c] = bi[c];
  for (size_t e = begin; e < diag; ++e) {
    const index_t j = col_idx[e];
    if (guard.drops(j)) continue;
    const double a = values[e];
    const double* xj = x.data() + static_cast<size_t>(j) * r;
    for (size_t c = 0; c < r; ++c) xi[c] -= a * xj[c];
  }
  const double d = values[diag];
  for (size_t c = 0; c < r; ++c) xi[c] /= d;
}

/// computeRowPacked with the SSP guard (the slab walk's SSP form).
inline void computeRowPackedSsp(const index_t* cols, const double* vals,
                                std::size_t nnz, double diag,
                                std::span<const double> b,
                                std::span<double> x, index_t i,
                                const SspGuard& guard) {
  double acc = b[static_cast<size_t>(i)];
  for (std::size_t k = 0; k < nnz; ++k) {
    const index_t j = cols[k];
    if (guard.drops(j)) continue;
    acc -= vals[k] * x[static_cast<size_t>(j)];
  }
  x[static_cast<size_t>(i)] = acc / diag;
}

/// computeRowMultiPacked with the SSP guard. Runs the computeRowMulti
/// loop shape rather than the register-blocked one: per RHS column the
/// operation sequence is identical either way (the blocking contract at
/// the top of this file), so column c stays bitwise equal to the exact
/// kernels whenever the guard never fires.
inline void computeRowMultiPackedSsp(const index_t* cols, const double* vals,
                                     std::size_t nnz, double diag,
                                     std::span<const double> b,
                                     std::span<double> x, index_t i,
                                     std::size_t r, const SspGuard& guard) {
  const double* bi = b.data() + static_cast<std::size_t>(i) * r;
  double* xi = x.data() + static_cast<std::size_t>(i) * r;
  for (std::size_t c = 0; c < r; ++c) xi[c] = bi[c];
  for (std::size_t e = 0; e < nnz; ++e) {
    const index_t j = cols[e];
    if (guard.drops(j)) continue;
    const double a = vals[e];
    const double* xj = x.data() + static_cast<std::size_t>(j) * r;
    for (std::size_t c = 0; c < r; ++c) xi[c] -= a * xj[c];
  }
  for (std::size_t c = 0; c < r; ++c) xi[c] /= diag;
}

inline void requireVectorSizes(const sparse::CsrMatrix& lower,
                               std::span<const double> b,
                               std::span<double> x, index_t nrhs,
                               const char* who) {
  const auto n = static_cast<size_t>(lower.rows());
  if (nrhs <= 0 || b.size() != n * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument(std::string(who) + ": vector size mismatch");
  }
}

}  // namespace sts::exec::detail
