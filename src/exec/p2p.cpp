#include "exec/p2p.hpp"

#include <omp.h>

#include <numeric>
#include <stdexcept>

#include "exec/serial.hpp"

namespace sts::exec {

P2pExecutor::P2pExecutor(const CsrMatrix& lower, const Schedule& schedule,
                         const Dag& sync_dag)
    : lower_(lower), num_threads_(schedule.numCores()) {
  requireSolvableLower(lower);
  const index_t n = lower.rows();
  if (schedule.numVertices() != n || sync_dag.numVertices() != n) {
    throw std::invalid_argument("P2pExecutor: size mismatch");
  }

  thread_verts_.resize(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    auto& verts = thread_verts_[static_cast<size_t>(t)];
    for (index_t s = 0; s < schedule.numSupersteps(); ++s) {
      const auto group = schedule.group(s, t);
      verts.insert(verts.end(), group.begin(), group.end());
    }
  }

  // Cross-thread parents in the sync DAG, flattened per vertex.
  wait_ptr_.assign(static_cast<size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    offset_t cnt = 0;
    for (const index_t u : sync_dag.parents(v)) {
      cnt += (schedule.coreOf(u) != schedule.coreOf(v)) ? 1 : 0;
    }
    wait_ptr_[static_cast<size_t>(v) + 1] = cnt;
  }
  std::partial_sum(wait_ptr_.begin(), wait_ptr_.end(), wait_ptr_.begin());
  wait_adj_.resize(static_cast<size_t>(wait_ptr_.back()));
  {
    offset_t k = 0;
    for (index_t v = 0; v < n; ++v) {
      for (const index_t u : sync_dag.parents(v)) {
        if (schedule.coreOf(u) != schedule.coreOf(v)) {
          wait_adj_[static_cast<size_t>(k++)] = u;
        }
      }
    }
  }
  cross_deps_ = wait_ptr_.back();

  done_ = std::make_unique<std::atomic<std::uint32_t>[]>(
      static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    done_[static_cast<size_t>(v)].store(0, std::memory_order_relaxed);
  }
}

void P2pExecutor::solve(std::span<const double> b, std::span<double> x) {
  if (static_cast<index_t>(b.size()) != lower_.rows() ||
      static_cast<index_t>(x.size()) != lower_.rows()) {
    throw std::invalid_argument("P2pExecutor::solve: vector size mismatch");
  }
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const std::uint32_t epoch = ++epoch_;

#pragma omp parallel num_threads(num_threads_)
  {
    const int t = omp_get_thread_num();
    const auto& verts = thread_verts_[static_cast<size_t>(t)];
    for (const index_t i : verts) {
      // Wait for cross-thread dependencies (sparsified by the reduction).
      for (offset_t k = wait_ptr_[static_cast<size_t>(i)];
           k < wait_ptr_[static_cast<size_t>(i) + 1]; ++k) {
        const auto u = static_cast<size_t>(wait_adj_[static_cast<size_t>(k)]);
        while (done_[u].load(std::memory_order_acquire) != epoch) {
          // spin: dependencies resolve within a few hundred cycles
        }
      }
      const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
      const auto diag =
          static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
      double acc = b[static_cast<size_t>(i)];
      for (size_t k = begin; k < diag; ++k) {
        acc -= values[k] * x[static_cast<size_t>(col_idx[k])];
      }
      x[static_cast<size_t>(i)] = acc / values[diag];
      done_[static_cast<size_t>(i)].store(epoch, std::memory_order_release);
    }
  }
}

}  // namespace sts::exec
