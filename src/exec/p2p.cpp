#include "exec/p2p.hpp"

#include <omp.h>

#include <numeric>
#include <stdexcept>

#include "exec/affinity.hpp"
#include "exec/row_kernels.hpp"
#include "exec/serial.hpp"
#include "obs/trace.hpp"

namespace sts::exec {

namespace {

/// The one OpenMP region shape shared by both P2P slab walks (single- and
/// multi-RHS): pin + note, then stream the thread's slab, spin-waiting on
/// each record's cross-thread parents before computing and stamping its
/// completion flag. Only the per-record compute differs between callers.
template <typename NotePinFn, typename ComputeFn>
void slabP2pRegion(const detail::SlabPlan& plan, index_t steps, int team,
                   std::span<const int> pin_set,
                   std::span<const offset_t> wait_ptr,
                   std::span<const index_t> wait_adj,
                   std::atomic<std::uint32_t>* done, std::uint32_t epoch,
                   obs::SolveTrace* sink, NotePinFn&& note_pin,
                   ComputeFn&& compute) {
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    note_pin(pin);
    obs::StepTracer tracer(sink);
    detail::forEachSlabRecord(
        plan.threads[t], steps,
        [&](const detail::SlabRecordView& rec) {
          const auto i = rec.row;
          for (offset_t w = wait_ptr[static_cast<size_t>(i)];
               w < wait_ptr[static_cast<size_t>(i) + 1]; ++w) {
            const auto u =
                static_cast<size_t>(wait_adj[static_cast<size_t>(w)]);
            // Only unresolved dependencies are timed: the first load
            // doubles as the resolved-already fast path, so a satisfied
            // flag costs the tracer nothing.
            if (done[u].load(std::memory_order_acquire) != epoch) {
              tracer.spinBegin();
              while (done[u].load(std::memory_order_acquire) != epoch) {
              }
              tracer.spinEnd(static_cast<std::uint64_t>(i));
            }
          }
          compute(rec);
          done[static_cast<size_t>(i)].store(epoch,
                                             std::memory_order_release);
        },
        [] {});
    tracer.finishP2p(static_cast<std::uint64_t>(steps));
  }
}

/// Re-establishes the team-join happens-before edge through atomics after
/// a P2P region. The OpenMP implicit barrier already joined the team, but
/// libgomp's futex-based barrier is invisible to ThreadSanitizer (it is
/// not TSan-instrumented), so the caller's reads of x would appear to race
/// with worker writes. Each thread's final completion-flag store is a
/// release covering all of its x writes; acquiring those flags here — they
/// are already set, so the loops do not spin — rebuilds the same edge in
/// TSan's model. The BSP paths need no equivalent: their last superstep
/// ends on SpinBarrier, whose atomics TSan sees.
void acquireTeamWrites(const detail::FoldedLists& plan,
                       const std::atomic<std::uint32_t>* done,
                       std::uint32_t epoch) {
  for (const auto& verts : plan.verts) {
    if (verts.empty()) continue;
    while (done[static_cast<size_t>(verts.back())].load(
               std::memory_order_acquire) != epoch) {
    }
  }
}

}  // namespace

P2pExecutor::P2pExecutor(const CsrMatrix& lower, const Schedule& schedule,
                         const Dag& sync_dag)
    : lower_(lower),
      num_threads_(schedule.numCores()),
      num_supersteps_(schedule.numSupersteps()),
      default_ctx_(schedule.numCores(), lower.rows()) {
  requireSolvableLower(lower);
  const index_t n = lower.rows();
  if (schedule.numVertices() != n || sync_dag.numVertices() != n) {
    throw std::invalid_argument("P2pExecutor: size mismatch");
  }

  full_.verts.resize(static_cast<size_t>(num_threads_));
  full_.step_ptr.resize(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    auto& verts = full_.verts[static_cast<size_t>(t)];
    auto& ptr = full_.step_ptr[static_cast<size_t>(t)];
    ptr.push_back(0);
    for (index_t s = 0; s < schedule.numSupersteps(); ++s) {
      const auto group = schedule.group(s, t);
      verts.insert(verts.end(), group.begin(), group.end());
      ptr.push_back(static_cast<offset_t>(verts.size()));
    }
  }
  rank_loads_ = detail::threadListLoads(full_.verts, full_.step_ptr,
                                        num_supersteps_, lower.rowPtr());
  folded_.init(num_threads_, &full_);
  slabs_.init(num_threads_);

  // Cross-thread parents in the sync DAG, flattened per vertex.
  wait_ptr_.assign(static_cast<size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    offset_t cnt = 0;
    for (const index_t u : sync_dag.parents(v)) {
      cnt += (schedule.coreOf(u) != schedule.coreOf(v)) ? 1 : 0;
    }
    wait_ptr_[static_cast<size_t>(v) + 1] = cnt;
  }
  std::partial_sum(wait_ptr_.begin(), wait_ptr_.end(), wait_ptr_.begin());
  wait_adj_.resize(static_cast<size_t>(wait_ptr_.back()));
  {
    offset_t k = 0;
    for (index_t v = 0; v < n; ++v) {
      for (const index_t u : sync_dag.parents(v)) {
        if (schedule.coreOf(u) != schedule.coreOf(v)) {
          wait_adj_[static_cast<size_t>(k++)] = u;
        }
      }
    }
  }
  cross_deps_ = wait_ptr_.back();
}

const detail::FoldedLists& P2pExecutor::foldedPlan(
    int team, core::FoldPolicy policy) const {
  return folded_.get(team, policy, [this](int t, core::FoldPolicy p) {
    STS_TRACE_SPAN1("plan", "fold_build", "team", t);
    const auto map =
        core::foldRankMap(num_supersteps_, num_threads_, t, p, rank_loads_);
    return detail::foldThreadLists(full_.verts, full_.step_ptr,
                                   num_supersteps_, t, map);
  });
}

const detail::SlabPlan& P2pExecutor::slabPlan(int team,
                                              core::FoldPolicy policy) const {
  if (team == num_threads_) {
    // Policy-invariant at full width: one slab shared across policies.
    return slabs_.getPolicyShared(team, [this]([[maybe_unused]] int t) {
      STS_TRACE_SPAN1("plan", "slab_build", "team", t);
      return detail::buildSlabPlan(lower_, full_);
    });
  }
  return slabs_.get(team, policy, [this](int t, core::FoldPolicy p) {
    STS_TRACE_SPAN1("plan", "slab_build", "team", t);
    return detail::buildSlabPlan(lower_, foldedPlan(t, p));
  });
}

void P2pExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx, int team, core::FoldPolicy policy,
                        StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    solveSlab(b, x, ctx, team, policy);
    return;
  }
  solve(b, x, ctx, team, policy);
}

void P2pExecutor::solveSlab(std::span<const double> b, std::span<double> x,
                            SolveContext& ctx, int team,
                            core::FoldPolicy policy) const {
  detail::requireVectorSizes(lower_, b, x, 1, "P2pExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "P2pExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "P2pExecutor::solve");
  const std::uint32_t epoch = ctx.beginP2pEpoch();
  slabP2pRegion(
      slabPlan(team, policy), num_supersteps_, team, ctx.pinnedCores(),
      wait_ptr_, wait_adj_, ctx.done_.get(), epoch, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec) {
        detail::computeRowPacked(rec.cols, rec.vals, rec.nnz, rec.diag, b, x,
                                 rec.row);
      });
  acquireTeamWrites(foldedPlan(team, policy), ctx.done_.get(), epoch);
}

void P2pExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx, int team,
                        core::FoldPolicy policy) const {
  detail::requireVectorSizes(lower_, b, x, 1, "P2pExecutor::solve");
  detail::requireTeamSize(team, num_threads_, "P2pExecutor::solve");
  ctx.requireShape(team, lower_.rows(), "P2pExecutor::solve");
  const detail::FoldedLists& plan = foldedPlan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const std::uint32_t epoch = ctx.beginP2pEpoch();
  const std::span<const int> pin_set = ctx.pinnedCores();
  std::atomic<std::uint32_t>* const done = ctx.done_.get();

  // A dynamically shrunk team would strand the spin-waits on vertices of
  // the missing threads; pin the team size like the BSP paths do.
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    const auto& verts = plan.verts[t];
    for (const index_t i : verts) {
      // Wait for cross-thread dependencies (sparsified by the reduction).
      // Under a folded team some of these sources live on this very
      // thread, earlier in the list — their flags are already set.
      for (offset_t k = wait_ptr_[static_cast<size_t>(i)];
           k < wait_ptr_[static_cast<size_t>(i) + 1]; ++k) {
        const auto u = static_cast<size_t>(wait_adj_[static_cast<size_t>(k)]);
        if (done[u].load(std::memory_order_acquire) != epoch) {
          tracer.spinBegin();
          while (done[u].load(std::memory_order_acquire) != epoch) {
            // spin: dependencies resolve within a few hundred cycles
          }
          tracer.spinEnd(static_cast<std::uint64_t>(i));
        }
      }
      detail::computeRow(row_ptr, col_idx, values, b, x, i);
      done[static_cast<size_t>(i)].store(epoch, std::memory_order_release);
    }
    tracer.finishP2p(static_cast<std::uint64_t>(num_supersteps_));
  }
  acquireTeamWrites(plan, done, epoch);
}

void P2pExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx, int team) const {
  solve(b, x, ctx, team, core::FoldPolicy::kModulo);
}

void P2pExecutor::solve(std::span<const double> b, std::span<double> x,
                        SolveContext& ctx) const {
  solve(b, x, ctx, num_threads_);
}

void P2pExecutor::solve(std::span<const double> b, std::span<double> x) const {
  solve(b, x, default_ctx_, num_threads_);
}

void P2pExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx, int team,
                                core::FoldPolicy policy,
                                StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    solveMultiRhsSlab(b, x, nrhs, ctx, team, policy);
    return;
  }
  solveMultiRhs(b, x, nrhs, ctx, team, policy);
}

void P2pExecutor::solveMultiRhsSlab(std::span<const double> b,
                                    std::span<double> x, index_t nrhs,
                                    SolveContext& ctx, int team,
                                    core::FoldPolicy policy) const {
  detail::requireVectorSizes(lower_, b, x, nrhs, "P2pExecutor::solveMultiRhs");
  detail::requireTeamSize(team, num_threads_, "P2pExecutor::solveMultiRhs");
  ctx.requireShape(team, lower_.rows(), "P2pExecutor::solveMultiRhs");
  const auto r = static_cast<size_t>(nrhs);
  const std::uint32_t epoch = ctx.beginP2pEpoch();
  slabP2pRegion(
      slabPlan(team, policy), num_supersteps_, team, ctx.pinnedCores(),
      wait_ptr_, wait_adj_, ctx.done_.get(), epoch, ctx.trace(),
      [&ctx](const ScopedPin& pin) { ctx.notePin(pin); },
      [&](const detail::SlabRecordView& rec) {
        detail::computeRowMultiPacked(rec.cols, rec.vals, rec.nnz, rec.diag,
                                      b, x, rec.row, r);
      });
  acquireTeamWrites(foldedPlan(team, policy), ctx.done_.get(), epoch);
}

void P2pExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx, int team,
                                core::FoldPolicy policy) const {
  detail::requireVectorSizes(lower_, b, x, nrhs, "P2pExecutor::solveMultiRhs");
  detail::requireTeamSize(team, num_threads_, "P2pExecutor::solveMultiRhs");
  ctx.requireShape(team, lower_.rows(), "P2pExecutor::solveMultiRhs");
  const detail::FoldedLists& plan = foldedPlan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const auto r = static_cast<size_t>(nrhs);
  const std::uint32_t epoch = ctx.beginP2pEpoch();
  const std::span<const int> pin_set = ctx.pinnedCores();
  std::atomic<std::uint32_t>* const done = ctx.done_.get();

  // A dynamically shrunk team would strand the spin-waits on vertices of
  // the missing threads; pin the team size like the BSP paths do.
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    const auto& verts = plan.verts[t];
    for (const index_t i : verts) {
      for (offset_t k = wait_ptr_[static_cast<size_t>(i)];
           k < wait_ptr_[static_cast<size_t>(i) + 1]; ++k) {
        const auto u = static_cast<size_t>(wait_adj_[static_cast<size_t>(k)]);
        if (done[u].load(std::memory_order_acquire) != epoch) {
          tracer.spinBegin();
          while (done[u].load(std::memory_order_acquire) != epoch) {
          }
          tracer.spinEnd(static_cast<std::uint64_t>(i));
        }
      }
      detail::computeRowMulti(row_ptr, col_idx, values, b, x, i, r);
      done[static_cast<size_t>(i)].store(epoch, std::memory_order_release);
    }
    tracer.finishP2p(static_cast<std::uint64_t>(num_supersteps_));
  }
  acquireTeamWrites(plan, done, epoch);
}

void P2pExecutor::solveMultiRhsTiled(std::span<const double> b,
                                     std::span<double> x,
                                     const TileLayout& layout,
                                     SolveContext& ctx, int team,
                                     core::FoldPolicy policy,
                                     StorageKind storage) const {
  requireTileShapes(lower_.rows(), layout, b, x,
                    "P2pExecutor::solveMultiRhsTiled");
  detail::requireTeamSize(team, num_threads_,
                          "P2pExecutor::solveMultiRhsTiled");
  ctx.requireShape(team, lower_.rows(), "P2pExecutor::solveMultiRhsTiled");
  // One full pass per tile, each under its own epoch: the flags cannot
  // track partial-tile completion, and re-resolving the (sparsified)
  // dependency structure per tile is the price of the cache-resident tile.
  const index_t ntiles = layout.numTiles();
  for (index_t t = 0; t < ntiles; ++t) {
    const auto bt = layout.tileSpan(b, t);
    const auto xt = layout.tileSpan(x, t);
    const index_t w = layout.tileWidth(t);
    if (storage == StorageKind::kSlab) {
      solveMultiRhsSlab(bt, xt, w, ctx, team, policy);
    } else {
      solveTileCsrPass(bt, xt, static_cast<std::size_t>(w), ctx, team,
                       policy);
    }
  }
}

void P2pExecutor::solveTileCsrPass(std::span<const double> b_tile,
                                   std::span<double> x_tile, std::size_t w,
                                   SolveContext& ctx, int team,
                                   core::FoldPolicy policy) const {
  const detail::FoldedLists& plan = foldedPlan(team, policy);
  const auto row_ptr = lower_.rowPtr();
  const auto col_idx = lower_.colIdx();
  const auto values = lower_.values();
  const std::uint32_t epoch = ctx.beginP2pEpoch();
  const std::span<const int> pin_set = ctx.pinnedCores();
  std::atomic<std::uint32_t>* const done = ctx.done_.get();

  // A dynamically shrunk team would strand the spin-waits on vertices of
  // the missing threads; pin the team size like the BSP paths do.
  omp_set_dynamic(0);
#pragma omp parallel num_threads(team)
  {
    const auto t = static_cast<size_t>(omp_get_thread_num());
    const ScopedPin pin(pin_set, static_cast<int>(t));
    ctx.notePin(pin);
    obs::StepTracer tracer(ctx.trace());
    const auto& verts = plan.verts[t];
    for (const index_t i : verts) {
      for (offset_t k = wait_ptr_[static_cast<size_t>(i)];
           k < wait_ptr_[static_cast<size_t>(i) + 1]; ++k) {
        const auto u = static_cast<size_t>(wait_adj_[static_cast<size_t>(k)]);
        if (done[u].load(std::memory_order_acquire) != epoch) {
          tracer.spinBegin();
          while (done[u].load(std::memory_order_acquire) != epoch) {
          }
          tracer.spinEnd(static_cast<std::uint64_t>(i));
        }
      }
      detail::computeRowMultiTiled(row_ptr, col_idx, values, b_tile, x_tile,
                                   i, w);
      done[static_cast<size_t>(i)].store(epoch, std::memory_order_release);
    }
    tracer.finishP2p(static_cast<std::uint64_t>(num_supersteps_));
  }
  acquireTeamWrites(plan, done, epoch);
}

std::size_t P2pExecutor::storageBytesMoved(int team, core::FoldPolicy policy,
                                           StorageKind storage) const {
  if (storage == StorageKind::kSlab) {
    return detail::slabBytesMoved(slabPlan(team, policy));
  }
  return csrBytesMoved(lower_.rows(), lower_.nnz());
}

void P2pExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx, int team) const {
  solveMultiRhs(b, x, nrhs, ctx, team, core::FoldPolicy::kModulo);
}

void P2pExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs,
                                SolveContext& ctx) const {
  solveMultiRhs(b, x, nrhs, ctx, num_threads_);
}

void P2pExecutor::solveMultiRhs(std::span<const double> b,
                                std::span<double> x, index_t nrhs) const {
  solveMultiRhs(b, x, nrhs, default_ctx_, num_threads_);
}

}  // namespace sts::exec
