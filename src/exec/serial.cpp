#include "exec/serial.hpp"

#include <stdexcept>

namespace sts::exec {

void requireSolvableLower(const CsrMatrix& lower) {
  if (lower.rows() != lower.cols()) {
    throw std::invalid_argument("solve: matrix must be square");
  }
  if (!lower.isLowerTriangular()) {
    throw std::invalid_argument("solve: matrix is not lower triangular");
  }
  for (index_t i = 0; i < lower.rows(); ++i) {
    const auto cols_i = lower.rowCols(i);
    if (cols_i.empty() || cols_i.back() != i ||
        lower.rowValues(i).back() == 0.0) {
      throw std::invalid_argument(
          "solve: missing or zero diagonal entry at row " + std::to_string(i));
    }
  }
}

void requireSolvableUpper(const CsrMatrix& upper) {
  if (upper.rows() != upper.cols()) {
    throw std::invalid_argument("solve: matrix must be square");
  }
  if (!upper.isUpperTriangular()) {
    throw std::invalid_argument("solve: matrix is not upper triangular");
  }
  for (index_t i = 0; i < upper.rows(); ++i) {
    const auto cols_i = upper.rowCols(i);
    if (cols_i.empty() || cols_i.front() != i ||
        upper.rowValues(i).front() == 0.0) {
      throw std::invalid_argument(
          "solve: missing or zero diagonal entry at row " + std::to_string(i));
    }
  }
}

void solveLowerSerial(const CsrMatrix& lower, std::span<const double> b,
                      std::span<double> x) {
  const index_t n = lower.rows();
  if (static_cast<index_t>(b.size()) != n ||
      static_cast<index_t>(x.size()) != n) {
    throw std::invalid_argument("solveLowerSerial: vector size mismatch");
  }
  const auto row_ptr = lower.rowPtr();
  const auto col_idx = lower.colIdx();
  const auto values = lower.values();
  for (index_t i = 0; i < n; ++i) {
    const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
    const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
    double acc = b[static_cast<size_t>(i)];
    for (size_t k = begin; k < diag; ++k) {
      acc -= values[k] * x[static_cast<size_t>(col_idx[k])];
    }
    x[static_cast<size_t>(i)] = acc / values[diag];
  }
}

void solveLowerSerialMultiRhs(const CsrMatrix& lower,
                              std::span<const double> b, std::span<double> x,
                              index_t nrhs) {
  const index_t n = lower.rows();
  if (nrhs <= 0) {
    throw std::invalid_argument("solveLowerSerialMultiRhs: nrhs must be > 0");
  }
  if (b.size() != static_cast<size_t>(n) * static_cast<size_t>(nrhs) ||
      x.size() != b.size()) {
    throw std::invalid_argument("solveLowerSerialMultiRhs: size mismatch");
  }
  const auto row_ptr = lower.rowPtr();
  const auto col_idx = lower.colIdx();
  const auto values = lower.values();
  const auto r = static_cast<size_t>(nrhs);
  for (index_t i = 0; i < n; ++i) {
    const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
    const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]) - 1;
    double* xi = x.data() + static_cast<size_t>(i) * r;
    const double* bi = b.data() + static_cast<size_t>(i) * r;
    for (size_t c = 0; c < r; ++c) xi[c] = bi[c];
    for (size_t k = begin; k < diag; ++k) {
      const double a = values[k];
      const double* xj = x.data() + static_cast<size_t>(col_idx[k]) * r;
      for (size_t c = 0; c < r; ++c) xi[c] -= a * xj[c];
    }
    const double d = values[diag];
    for (size_t c = 0; c < r; ++c) xi[c] /= d;
  }
}

void solveUpperSerial(const CsrMatrix& upper, std::span<const double> b,
                      std::span<double> x) {
  const index_t n = upper.rows();
  if (static_cast<index_t>(b.size()) != n ||
      static_cast<index_t>(x.size()) != n) {
    throw std::invalid_argument("solveUpperSerial: vector size mismatch");
  }
  const auto row_ptr = upper.rowPtr();
  const auto col_idx = upper.colIdx();
  const auto values = upper.values();
  for (index_t i = n; i-- > 0;) {
    const auto diag = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
    const auto end = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]);
    double acc = b[static_cast<size_t>(i)];
    for (size_t k = diag + 1; k < end; ++k) {
      acc -= values[k] * x[static_cast<size_t>(col_idx[k])];
    }
    x[static_cast<size_t>(i)] = acc / values[diag];
  }
}

}  // namespace sts::exec
