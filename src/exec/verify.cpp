#include "exec/verify.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace sts::exec {

double residualInf(const CsrMatrix& a, std::span<const double> x,
                   std::span<const double> b) {
  const std::vector<double> ax = a.multiply(x);
  if (ax.size() != b.size()) {
    throw std::invalid_argument("residualInf: size mismatch");
  }
  double r = 0.0;
  for (size_t i = 0; i < ax.size(); ++i) {
    r = std::max(r, std::abs(ax[i] - b[i]));
  }
  return r;
}

double maxAbsDiff(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("maxAbsDiff: size mismatch");
  }
  double d = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    d = std::max(d, std::abs(x[i] - y[i]));
  }
  return d;
}

double relMaxAbsDiff(std::span<const double> x, std::span<const double> y) {
  double norm = 1.0;
  for (const double v : y) norm = std::max(norm, std::abs(v));
  return maxAbsDiff(x, y) / norm;
}

std::vector<double> referenceSolution(sts::index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.1, 1.0);
  std::vector<double> x(static_cast<size_t>(n));
  for (auto& v : x) {
    v = dist(rng) * ((rng() & 1) ? 1.0 : -1.0);
  }
  return x;
}

}  // namespace sts::exec
