#include "exec/elastic.hpp"

#include "check/check.hpp"

namespace sts::exec::detail {

FoldedLists foldThreadLists(
    const std::vector<std::vector<sts::index_t>>& verts,
    const std::vector<std::vector<sts::offset_t>>& step_ptr,
    sts::index_t num_steps, int team, std::span<const int> rank_map) {
  const int width = static_cast<int>(verts.size());
  requireTeamSize(team, width, "foldThreadLists");
  if (rank_map.size() != static_cast<std::size_t>(width)) {
    throw std::invalid_argument("foldThreadLists: rank map size mismatch");
  }
  for (const int q : rank_map) {
    if (q < 0 || q >= team) {
      throw std::invalid_argument("foldThreadLists: slot out of range");
    }
  }

  // Invert the map once (ascending rank within each slot) so each folded
  // thread's build walks only its own source ranks.
  std::vector<std::vector<int>> slot_ranks(static_cast<std::size_t>(team));
  for (int p = 0; p < width; ++p) {
    slot_ranks[static_cast<std::size_t>(rank_map[static_cast<std::size_t>(p)])]
        .push_back(p);
  }

  FoldedLists folded;
  folded.verts.resize(static_cast<std::size_t>(team));
  folded.step_ptr.resize(static_cast<std::size_t>(team));
  for (int q = 0; q < team; ++q) {
    auto& out = folded.verts[static_cast<std::size_t>(q)];
    auto& ptr = folded.step_ptr[static_cast<std::size_t>(q)];
    const auto& ranks = slot_ranks[static_cast<std::size_t>(q)];
    std::size_t total = 0;
    for (const int p : ranks) {
      total += verts[static_cast<std::size_t>(p)].size();
    }
    out.reserve(total);
    ptr.reserve(static_cast<std::size_t>(num_steps) + 1);
    ptr.push_back(0);
    for (sts::index_t s = 0; s < num_steps; ++s) {
      for (const int p : ranks) {
        const auto& src = verts[static_cast<std::size_t>(p)];
        const auto& src_ptr = step_ptr[static_cast<std::size_t>(p)];
        const auto begin = static_cast<std::size_t>(src_ptr[static_cast<std::size_t>(s)]);
        const auto end = static_cast<std::size_t>(src_ptr[static_cast<std::size_t>(s) + 1]);
        out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(begin),
                   src.begin() + static_cast<std::ptrdiff_t>(end));
      }
      ptr.push_back(static_cast<sts::offset_t>(out.size()));
    }
  }
#if STS_CHECKS
  check::enforce(check::validateRankMap(width, team, rank_map),
                 "foldThreadLists");
  sts::index_t rows = 0;
  for (const auto& list : verts) rows += static_cast<sts::index_t>(list.size());
  check::enforce(check::validateFoldedLists(folded, num_steps, rows),
                 "foldThreadLists");
#endif
  return folded;
}

std::vector<core::weight_t> threadListLoads(
    const std::vector<std::vector<sts::index_t>>& verts,
    const std::vector<std::vector<sts::offset_t>>& step_ptr,
    sts::index_t num_steps, std::span<const sts::offset_t> row_ptr) {
  const int width = static_cast<int>(verts.size());
  std::vector<core::weight_t> loads(static_cast<std::size_t>(num_steps) *
                                        static_cast<std::size_t>(width),
                                    0);
  for (int p = 0; p < width; ++p) {
    const auto& list = verts[static_cast<std::size_t>(p)];
    const auto& ptr = step_ptr[static_cast<std::size_t>(p)];
    for (sts::index_t s = 0; s < num_steps; ++s) {
      core::weight_t load = 0;
      const auto begin = static_cast<std::size_t>(ptr[static_cast<std::size_t>(s)]);
      const auto end = static_cast<std::size_t>(ptr[static_cast<std::size_t>(s) + 1]);
      for (std::size_t k = begin; k < end; ++k) {
        const auto v = static_cast<std::size_t>(list[k]);
        load += static_cast<core::weight_t>(row_ptr[v + 1] - row_ptr[v]);
      }
      loads[static_cast<std::size_t>(s) * static_cast<std::size_t>(width) +
            static_cast<std::size_t>(p)] = load;
    }
  }
  return loads;
}

}  // namespace sts::exec::detail
