#include "exec/elastic.hpp"

namespace sts::exec::detail {

FoldedLists foldThreadLists(
    const std::vector<std::vector<sts::index_t>>& verts,
    const std::vector<std::vector<sts::offset_t>>& step_ptr,
    sts::index_t num_steps, int team) {
  const int width = static_cast<int>(verts.size());
  requireTeamSize(team, width, "foldThreadLists");

  FoldedLists folded;
  folded.verts.resize(static_cast<std::size_t>(team));
  folded.step_ptr.resize(static_cast<std::size_t>(team));
  for (int q = 0; q < team; ++q) {
    auto& out = folded.verts[static_cast<std::size_t>(q)];
    auto& ptr = folded.step_ptr[static_cast<std::size_t>(q)];
    std::size_t total = 0;
    for (int p = q; p < width; p += team) {
      total += verts[static_cast<std::size_t>(p)].size();
    }
    out.reserve(total);
    ptr.reserve(static_cast<std::size_t>(num_steps) + 1);
    ptr.push_back(0);
    for (sts::index_t s = 0; s < num_steps; ++s) {
      for (int p = q; p < width; p += team) {
        const auto& src = verts[static_cast<std::size_t>(p)];
        const auto& src_ptr = step_ptr[static_cast<std::size_t>(p)];
        const auto begin = static_cast<std::size_t>(src_ptr[static_cast<std::size_t>(s)]);
        const auto end = static_cast<std::size_t>(src_ptr[static_cast<std::size_t>(s) + 1]);
        out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(begin),
                   src.begin() + static_cast<std::ptrdiff_t>(end));
      }
      ptr.push_back(static_cast<sts::offset_t>(out.size()));
    }
  }
  return folded;
}

}  // namespace sts::exec::detail
