#include "exec/tile.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fault/failpoint.hpp"

namespace sts::exec {

namespace {

std::optional<std::string> readSysString(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back())) != 0) {
    line.pop_back();
  }
  if (line.empty()) return std::nullopt;
  return line;
}

/// "32K" / "1024K" / "8M" / plain bytes -> bytes; 0 on parse failure.
std::size_t parseCacheSize(const std::string& s) {
  std::size_t value = 0;
  std::size_t pos = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    value = value * 10 + static_cast<std::size_t>(s[pos] - '0');
    ++pos;
  }
  if (pos == 0) return 0;
  if (pos < s.size()) {
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(s[pos])));
    if (suffix == 'K') value *= 1024;
    else if (suffix == 'M') value *= 1024 * 1024;
    else if (suffix == 'G') value *= 1024 * 1024 * 1024;
  }
  return value;
}

/// CPU count of a shared_cpu_list like "0-3,8,10-11"; 0 on parse failure.
int parseCpuListCount(const std::string& s) {
  int count = 0;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const auto dash = part.find('-');
    if (dash == std::string::npos) {
      count += part.empty() ? 0 : 1;
      continue;
    }
    const int lo = std::atoi(part.substr(0, dash).c_str());
    const int hi = std::atoi(part.substr(dash + 1).c_str());
    if (hi >= lo) count += hi - lo + 1;
  }
  return count;
}

}  // namespace

CacheGeometry detectCacheGeometry() {
  CacheGeometry geo;
  const std::string root = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 16; ++idx) {
    const std::string base = root + std::to_string(idx);
    const auto level_str = readSysString(base + "/level");
    if (!level_str) break;  // cache indexes are contiguous
    const auto type = readSysString(base + "/type").value_or("");
    const auto size = parseCacheSize(readSysString(base + "/size")
                                         .value_or(""));
    if (size == 0) continue;
    const int level = std::atoi(level_str->c_str());
    const int sharing = parseCpuListCount(
        readSysString(base + "/shared_cpu_list").value_or(""));
    const auto line = parseCacheSize(
        readSysString(base + "/coherency_line_size").value_or(""));
    if (line != 0) geo.line_bytes = line;
    if (level == 1 && type == "Data") {
      geo.l1d_bytes = size;
      if (sharing > 0) geo.l1d_shared_cpus = sharing;
    } else if (level == 2 && type != "Instruction") {
      geo.l2_bytes = size;
      if (sharing > 0) geo.l2_shared_cpus = sharing;
      geo.detected = true;
    } else if (level == 3 && type != "Instruction") {
      geo.l3_bytes = size;
      if (sharing > 0) geo.l3_shared_cpus = sharing;
    }
  }
  return geo;
}

const CacheGeometry& cacheGeometry() {
  static const CacheGeometry geo = detectCacheGeometry();
  return geo;
}

index_t pickTileCols(index_t rows) {
  // Tile-build failure failpoint: a serial site (layout choice precedes
  // any parallel region), so `fail`/`badalloc` actions may throw here.
  STS_FAILPOINT("exec.tile_build");
  if (const char* env = std::getenv("STS_TILE_COLS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<index_t>(v);
  }
  const CacheGeometry& geo = cacheGeometry();
  const std::size_t share =
      geo.l2_bytes / static_cast<std::size_t>(std::max(1, geo.l2_shared_cpus));
  // Half the share for the two dense tiles; the rest stays available for
  // the matrix stream and the referenced x lines of earlier tiles' rows.
  const std::size_t budget = share / 2;
  const std::size_t per_col =
      2 * sizeof(double) * static_cast<std::size_t>(std::max<index_t>(1, rows));
  std::size_t t = budget / per_col;
  t = std::clamp<std::size_t>(t, 16, 128);
  t &= ~std::size_t{7};  // whole register blocks
  return static_cast<index_t>(t);
}

}  // namespace sts::exec
