#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/sync.hpp"
#include "core/schedule.hpp"
#include "sparse/types.hpp"

/// \file elastic.hpp
/// Elastic-execution support shared by the executors: folding full-width
/// per-thread work lists onto a smaller team (the executor-side image of
/// core::Schedule::foldTo — folded thread q owns every original rank p with
/// rank_map[p] == q, supersteps preserved) and a lazily built, immutable
/// cache of one such plan per (team size, fold policy). Folding is
/// lossless for any rank-granularity map: the folded execution computes
/// every row with the same operands in a dependency-respecting order, so
/// results are bitwise equal to the full-width solve under every policy.

namespace sts::exec::detail {

/// Per-thread superstep-major work lists, the executor's native shape:
/// verts[t] holds thread t's vertices with step boundaries step_ptr[t][s].
struct FoldedLists {
  std::vector<std::vector<sts::index_t>> verts;
  std::vector<std::vector<sts::offset_t>> step_ptr;
};

/// Folds `width`-thread work lists onto `team` threads by an explicit
/// rank map (`rank_map[p]` = folded thread of original rank p, size
/// `width`, values in [0, team)): folded thread q's superstep-s segment
/// concatenates the superstep-s segments of every original rank mapped to
/// q in ascending rank — the same concatenation order as
/// core::Schedule::foldWith, which test_elastic pins the implementations
/// to.
FoldedLists foldThreadLists(
    const std::vector<std::vector<sts::index_t>>& verts,
    const std::vector<std::vector<sts::offset_t>>& step_ptr,
    sts::index_t num_steps, int team, std::span<const int> rank_map);

/// Per-(superstep, rank) work of full-width thread lists, superstep-major
/// (size num_steps * width): the work of vertex v is the stored-entry count
/// of row v (row_ptr deltas — identical to dag::Dag::fromLowerTriangular
/// weights for solvable matrices, whose rows are never empty). Feeds
/// core::foldRankMap's kBinPack policy.
std::vector<core::weight_t> threadListLoads(
    const std::vector<std::vector<sts::index_t>>& verts,
    const std::vector<std::vector<sts::offset_t>>& step_ptr,
    sts::index_t num_steps, std::span<const sts::offset_t> row_ptr);

/// Throws std::invalid_argument unless 1 <= team <= width.
inline void requireTeamSize(int team, int width, const char* who) {
  if (team < 1 || team > width) {
    throw std::invalid_argument(std::string(who) + ": team size " +
                                std::to_string(team) +
                                " outside [1, " + std::to_string(width) + "]");
  }
}

/// Lazily built execution plans keyed by (team size, fold policy). Plans
/// are immutable once published, so the fast path is a single acquire
/// load; the first solve at a given key builds the plan under a mutex
/// (concurrent solves at other keys proceed on their published plans
/// meanwhile — only concurrent *builds* serialize). The full-width plan is
/// identical under every policy (folding onto the full width merges
/// nothing), so init() can register one caller-owned unfolded plan that
/// every (max_team, policy) slot shares instead of duplicating it.
template <typename Plan>
class TeamPlanCache {
 public:
  /// Sizes the cache for team sizes 1..max_team across all fold policies.
  /// `full_width`, when given, is published (non-owning) for team ==
  /// max_team under every policy; it must outlive the cache. Call once,
  /// from the executor constructor, before any concurrent use.
  void init(int max_team, const Plan* full_width = nullptr) {
    const auto teams = static_cast<std::size_t>(max_team) + 1;
    slots_ = std::make_unique<Slot[]>(
        teams * static_cast<std::size_t>(core::kNumFoldPolicies));
    max_team_ = max_team;
    if (full_width != nullptr) {
      for (int policy = 0; policy < core::kNumFoldPolicies; ++policy) {
        slots_[slotIndex(max_team, static_cast<core::FoldPolicy>(policy))]
            .published.store(full_width, std::memory_order_release);
      }
    }
  }

  /// The plan for (team, policy), building via `build(team, policy)` on
  /// first request.
  template <typename BuildFn>
  const Plan& get(int team, core::FoldPolicy policy, BuildFn&& build) const {
    Slot& slot = slots_[slotIndex(team, policy)];
    if (const Plan* plan = slot.published.load(std::memory_order_acquire)) {
      return *plan;
    }
    base::MutexLock lock(mu_);
    if (const Plan* plan = slot.published.load(std::memory_order_relaxed)) {
      return *plan;
    }
    slot.owned = std::make_unique<const Plan>(build(team, policy));
    slot.published.store(slot.owned.get(), std::memory_order_release);
    return *slot.owned;
  }

  /// Like get, for a team whose plan is policy-INVARIANT (the full width:
  /// folding onto numCores() merges nothing, so every policy yields the
  /// same plan): builds once via `build(team)` and publishes the one
  /// owned plan under every policy slot of `team`. Do not mix with get()
  /// on the same team.
  template <typename BuildFn>
  const Plan& getPolicyShared(int team, BuildFn&& build) const {
    Slot& first = slots_[slotIndex(team, static_cast<core::FoldPolicy>(0))];
    if (const Plan* plan = first.published.load(std::memory_order_acquire)) {
      return *plan;
    }
    base::MutexLock lock(mu_);
    if (const Plan* plan = first.published.load(std::memory_order_relaxed)) {
      return *plan;
    }
    first.owned = std::make_unique<const Plan>(build(team));
    for (int policy = 0; policy < core::kNumFoldPolicies; ++policy) {
      slots_[slotIndex(team, static_cast<core::FoldPolicy>(policy))]
          .published.store(first.owned.get(), std::memory_order_release);
    }
    return *first.owned;
  }

 private:
  std::size_t slotIndex(int team, core::FoldPolicy policy) const {
    return static_cast<std::size_t>(policy) *
               (static_cast<std::size_t>(max_team_) + 1) +
           static_cast<std::size_t>(team);
  }

  /// `published` is the lock-free read path (acquire/release pairing with
  /// the build under mu_); `owned` is the slot's storage, written only
  /// with mu_ held. The analysis cannot tie a nested struct's member to
  /// the enclosing cache's mutex, so the build mutex itself (base::Mutex
  /// + scoped MutexLock) carries the checked discipline here and the
  /// publication ordering stays a TSan-certified contract
  /// (tests/test_slab.cpp, tests/test_elastic.cpp Concurrent suites).
  struct Slot {
    std::atomic<const Plan*> published{nullptr};
    std::unique_ptr<const Plan> owned;
  };
  mutable base::Mutex mu_;
  std::unique_ptr<Slot[]> slots_;
  int max_team_ = 0;
};

}  // namespace sts::exec::detail
