#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sparse/types.hpp"

/// \file elastic.hpp
/// Elastic-execution support shared by the executors: folding full-width
/// per-thread work lists onto a smaller team (the executor-side image of
/// core::Schedule::foldTo — folded thread q owns every original rank
/// p ≡ q (mod team), supersteps preserved) and a lazily built, immutable
/// cache of one such plan per team size. Folding is lossless: the folded
/// execution computes every row with the same operands in a
/// dependency-respecting order, so results are bitwise equal to the
/// full-width solve.

namespace sts::exec::detail {

/// Per-thread superstep-major work lists, the executor's native shape:
/// verts[t] holds thread t's vertices with step boundaries step_ptr[t][s].
struct FoldedLists {
  std::vector<std::vector<sts::index_t>> verts;
  std::vector<std::vector<sts::offset_t>> step_ptr;
};

/// Folds `width`-thread work lists onto `team` threads (1 <= team < width):
/// folded thread q's superstep-s segment concatenates the superstep-s
/// segments of original threads q, q+team, q+2*team, ... in ascending rank.
FoldedLists foldThreadLists(
    const std::vector<std::vector<sts::index_t>>& verts,
    const std::vector<std::vector<sts::offset_t>>& step_ptr,
    sts::index_t num_steps, int team);

/// Throws std::invalid_argument unless 1 <= team <= width.
inline void requireTeamSize(int team, int width, const char* who) {
  if (team < 1 || team > width) {
    throw std::invalid_argument(std::string(who) + ": team size " +
                                std::to_string(team) +
                                " outside [1, " + std::to_string(width) + "]");
  }
}

/// Lazily built per-team-size execution plans. Plans are immutable once
/// published, so the fast path is a single acquire load; the first solve at
/// a given team size builds the plan under a mutex (concurrent solves at
/// other team sizes proceed on their published plans meanwhile — only
/// concurrent *builds* serialize).
template <typename Plan>
class TeamPlanCache {
 public:
  /// Sizes the cache for team sizes 1..max_team. Call once, from the
  /// executor constructor, before any concurrent use.
  void init(int max_team) {
    slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(max_team) + 1);
    max_team_ = max_team;
  }

  /// The plan for `team`, building it via `build(team)` on first request.
  template <typename BuildFn>
  const Plan& get(int team, BuildFn&& build) const {
    Slot& slot = slots_[static_cast<std::size_t>(team)];
    if (const Plan* plan = slot.published.load(std::memory_order_acquire)) {
      return *plan;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (const Plan* plan = slot.published.load(std::memory_order_relaxed)) {
      return *plan;
    }
    slot.owned = std::make_unique<const Plan>(build(team));
    slot.published.store(slot.owned.get(), std::memory_order_release);
    return *slot.owned;
  }

 private:
  struct Slot {
    std::atomic<const Plan*> published{nullptr};
    std::unique_ptr<const Plan> owned;
  };
  mutable std::mutex mu_;
  std::unique_ptr<Slot[]> slots_;
  int max_team_ = 0;
};

}  // namespace sts::exec::detail
