#include "sparse/ic0.hpp"

#include <cmath>
#include <stdexcept>

namespace sts::sparse {

namespace {

/// One factorization attempt on the pattern of `tril`; returns false on
/// breakdown (non-positive pivot). `values` holds the result on success.
bool tryFactor(const CsrMatrix& tril, double diag_scale,
               std::vector<double>& values) {
  const index_t n = tril.rows();
  const auto row_ptr = tril.rowPtr();
  const auto col_idx = tril.colIdx();
  const auto a_values = tril.values();
  values.assign(a_values.begin(), a_values.end());

  // diag_pos[i] = offset of the (i, i) entry == last entry of row i.
  std::vector<offset_t> diag_pos(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const offset_t last = row_ptr[static_cast<size_t>(i) + 1] - 1;
    if (last < row_ptr[static_cast<size_t>(i)] ||
        col_idx[static_cast<size_t>(last)] != i) {
      throw std::invalid_argument("incompleteCholesky: missing diagonal entry");
    }
    diag_pos[static_cast<size_t>(i)] = last;
    values[static_cast<size_t>(last)] *= diag_scale;
  }

  // Up-looking IC(0): for each row i, update the L(i, j) entries in place.
  for (index_t i = 0; i < n; ++i) {
    const offset_t begin = row_ptr[static_cast<size_t>(i)];
    const offset_t diag = diag_pos[static_cast<size_t>(i)];
    for (offset_t k = begin; k < diag; ++k) {
      const index_t j = col_idx[static_cast<size_t>(k)];
      // dot = sum over common columns c < j of L(i,c) * L(j,c)
      double dot = 0.0;
      offset_t pi = begin;
      offset_t pj = row_ptr[static_cast<size_t>(j)];
      const offset_t ji_end = k;                          // row i, cols < j
      const offset_t jj_end = diag_pos[static_cast<size_t>(j)];  // row j, cols < j
      while (pi < ji_end && pj < jj_end) {
        const index_t ci = col_idx[static_cast<size_t>(pi)];
        const index_t cj = col_idx[static_cast<size_t>(pj)];
        if (ci == cj) {
          dot += values[static_cast<size_t>(pi)] * values[static_cast<size_t>(pj)];
          ++pi;
          ++pj;
        } else if (ci < cj) {
          ++pi;
        } else {
          ++pj;
        }
      }
      const double ljj =
          values[static_cast<size_t>(diag_pos[static_cast<size_t>(j)])];
      values[static_cast<size_t>(k)] =
          (values[static_cast<size_t>(k)] - dot) / ljj;
    }
    double pivot = values[static_cast<size_t>(diag)];
    for (offset_t k = begin; k < diag; ++k) {
      pivot -= values[static_cast<size_t>(k)] * values[static_cast<size_t>(k)];
    }
    if (!(pivot > 0.0) || !std::isfinite(pivot)) return false;
    values[static_cast<size_t>(diag)] = std::sqrt(pivot);
  }
  return true;
}

}  // namespace

Ic0Result incompleteCholesky(const CsrMatrix& a, const Ic0Options& opts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("incompleteCholesky: matrix must be square");
  }
  const CsrMatrix tril = a.lowerTriangle(/*include_diagonal=*/true);

  std::vector<double> values;
  double shift = 0.0;
  for (int retry = 0; retry <= opts.max_retries; ++retry) {
    if (tryFactor(tril, 1.0 + shift, values)) {
      return Ic0Result{
          CsrMatrix(tril.rows(), tril.cols(),
                    std::vector<offset_t>(tril.rowPtr().begin(),
                                          tril.rowPtr().end()),
                    std::vector<index_t>(tril.colIdx().begin(),
                                         tril.colIdx().end()),
                    std::move(values)),
          shift, retry};
    }
    shift = (shift == 0.0) ? opts.initial_shift : shift * 2.0;
  }
  throw std::runtime_error(
      "incompleteCholesky: persistent breakdown; input is likely far from "
      "positive definite");
}

}  // namespace sts::sparse
