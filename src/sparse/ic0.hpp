#pragma once

#include "sparse/csr.hpp"

/// \file ic0.hpp
/// Zero-fill-in incomplete Cholesky factorization. Produces the lower
/// triangular factors that make up the paper's "iChol" data set (§6.2.3);
/// stands in for Eigen's IncompleteCholesky (see DESIGN.md substitutions).

namespace sts::sparse {

struct Ic0Options {
  /// When a pivot becomes non-positive the factorization is restarted with
  /// the diagonal scaled by (1 + shift); shift doubles on every retry.
  double initial_shift = 1e-3;
  /// Give up after this many shifted restarts.
  int max_retries = 20;
};

struct Ic0Result {
  CsrMatrix lower;      ///< L with the sparsity pattern of tril(A), diag included
  double applied_shift; ///< 0.0 if no breakdown recovery was needed
  int retries;          ///< number of restarts performed
};

/// Computes L such that L*L^T approximates A on the pattern of tril(A).
/// `a` must be square, structurally symmetric in its lower triangle usage
/// (only tril(A) is read) and have a full diagonal.
/// Throws std::invalid_argument on structural violations and
/// std::runtime_error if breakdown persists past max_retries.
Ic0Result incompleteCholesky(const CsrMatrix& a, const Ic0Options& opts = {});

}  // namespace sts::sparse
