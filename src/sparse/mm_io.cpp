#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sts::sparse {

namespace {

[[noreturn]] void fail(size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "MatrixMarket parse error at line " << line_no << ": " << what;
  throw std::runtime_error(os.str());
}

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

MatrixMarketData readMatrixMarket(std::istream& in) {
  std::string line;
  size_t line_no = 0;

  // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
  if (!std::getline(in, line)) fail(1, "empty stream");
  ++line_no;
  {
    std::istringstream banner(line);
    std::string magic, object, format, field, symmetry;
    banner >> magic >> object >> format >> field >> symmetry;
    if (toLower(magic) != "%%matrixmarket") fail(line_no, "missing banner");
    if (toLower(object) != "matrix") fail(line_no, "object must be 'matrix'");
    if (toLower(format) != "coordinate") {
      fail(line_no, "only coordinate format is supported");
    }
    MatrixMarketData data;
    const std::string f = toLower(field);
    if (f == "pattern") {
      data.pattern = true;
    } else if (f != "real" && f != "integer") {
      fail(line_no, "field must be real, integer or pattern (got " + f + ")");
    }
    const std::string s = toLower(symmetry);
    if (s == "symmetric") {
      data.symmetric = true;
    } else if (s != "general") {
      fail(line_no, "symmetry must be general or symmetric (got " + s + ")");
    }

    // Skip comments / blank lines, then read the size line.
    offset_t declared_nnz = -1;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '%') continue;
      std::istringstream sizes(line);
      long long r = 0, c = 0, z = 0;
      if (!(sizes >> r >> c >> z) || r < 0 || c < 0 || z < 0) {
        fail(line_no, "invalid size line");
      }
      data.rows = static_cast<index_t>(r);
      data.cols = static_cast<index_t>(c);
      declared_nnz = static_cast<offset_t>(z);
      break;
    }
    if (declared_nnz < 0) fail(line_no, "missing size line");

    data.entries.reserve(static_cast<size_t>(declared_nnz) *
                         (data.symmetric ? 2 : 1));
    offset_t seen = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '%') continue;
      std::istringstream entry(line);
      long long r = 0, c = 0;
      double v = 1.0;
      if (!(entry >> r >> c)) fail(line_no, "invalid entry line");
      if (!data.pattern && !(entry >> v)) {
        fail(line_no, "missing value on entry line");
      }
      if (r < 1 || r > data.rows || c < 1 || c > data.cols) {
        fail(line_no, "entry index out of declared range");
      }
      const auto row = static_cast<index_t>(r - 1);
      const auto col = static_cast<index_t>(c - 1);
      data.entries.push_back({row, col, v});
      if (data.symmetric && row != col) {
        data.entries.push_back({col, row, v});
      }
      ++seen;
    }
    if (seen != declared_nnz) {
      fail(line_no, "entry count does not match the size line");
    }
    return data;
  }
}

MatrixMarketData readMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  return readMatrixMarket(in);
}

CsrMatrix readCsrFromMatrixMarketFile(const std::string& path) {
  const MatrixMarketData data = readMatrixMarketFile(path);
  return CsrMatrix::fromTriplets(data.rows, data.cols, data.entries);
}

void writeMatrixMarket(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
  out << std::setprecision(17);
  for (index_t i = 0; i < m.rows(); ++i) {
    const auto cols_i = m.rowCols(i);
    const auto vals_i = m.rowValues(i);
    for (size_t k = 0; k < cols_i.size(); ++k) {
      out << (i + 1) << " " << (cols_i[k] + 1) << " " << vals_i[k] << "\n";
    }
  }
}

void writeMatrixMarketFile(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  writeMatrixMarket(out, m);
}

}  // namespace sts::sparse
