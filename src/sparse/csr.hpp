#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/types.hpp"

/// \file csr.hpp
/// Compressed sparse row matrix: the storage format used by every kernel in
/// the library (the paper's SpTRSV kernel iterates CSR rows, §6.1).

namespace sts::sparse {

/// An immutable-after-build sparse matrix in CSR format.
///
/// Invariants (checked by validate()):
///  * rowPtr has rows()+1 monotonically non-decreasing entries,
///    rowPtr[0] == 0 and rowPtr[rows()] == nnz();
///  * column indices within each row are strictly increasing and in range.
///
/// Duplicate entries are merged at build time. Explicit zeros are kept (a
/// stored zero is still a structural nonzero, which matters for DAG
/// construction).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Adopts pre-built arrays. Throws std::invalid_argument on malformed
  /// input (unsorted rows are sorted, duplicates rejected).
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values);

  /// Builds from an unordered triplet list. Duplicates are summed.
  static CsrMatrix fromTriplets(index_t rows, index_t cols,
                                std::span<const Triplet> triplets);

  /// n-by-n identity.
  static CsrMatrix identity(index_t n);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return static_cast<offset_t>(col_idx_.size()); }

  std::span<const offset_t> rowPtr() const { return row_ptr_; }
  std::span<const index_t> colIdx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  offset_t rowBegin(index_t i) const { return row_ptr_[static_cast<size_t>(i)]; }
  offset_t rowEnd(index_t i) const { return row_ptr_[static_cast<size_t>(i) + 1]; }
  index_t rowNnz(index_t i) const {
    return static_cast<index_t>(rowEnd(i) - rowBegin(i));
  }

  /// Column indices of row i, sorted ascending.
  std::span<const index_t> rowCols(index_t i) const {
    return std::span<const index_t>(col_idx_).subspan(
        static_cast<size_t>(rowBegin(i)), static_cast<size_t>(rowNnz(i)));
  }

  /// Values of row i, aligned with rowCols(i).
  std::span<const double> rowValues(index_t i) const {
    return std::span<const double>(values_).subspan(
        static_cast<size_t>(rowBegin(i)), static_cast<size_t>(rowNnz(i)));
  }

  /// Value at (i, j); 0.0 if the entry is not stored. O(log rowNnz).
  double at(index_t i, index_t j) const;

  /// True if (i, j) is a stored entry.
  bool hasEntry(index_t i, index_t j) const;

  /// B = A^T.
  CsrMatrix transposed() const;

  /// Strictly structural: keeps entries with col <= row (or col < row).
  CsrMatrix lowerTriangle(bool include_diagonal = true) const;
  /// Keeps entries with col >= row (or col > row).
  CsrMatrix upperTriangle(bool include_diagonal = true) const;

  bool isLowerTriangular() const;
  bool isUpperTriangular() const;

  /// True iff every diagonal entry (i, i) is stored (required for solves).
  bool hasFullDiagonal() const;

  /// Diagonal values; 0.0 where the entry is absent.
  std::vector<double> diagonal() const;

  /// B[i][j] = A[new_to_old[i]][new_to_old[j]]. `new_to_old` must be a
  /// permutation of 0..rows-1; the matrix must be square.
  CsrMatrix symmetricPermuted(std::span<const index_t> new_to_old) const;

  /// y = A x (dense x). Used by tests and right-hand-side construction.
  std::vector<double> multiply(std::span<const double> x) const;

  /// Same sparsity pattern (dims, rowPtr, colIdx).
  bool structureEquals(const CsrMatrix& other) const;

  /// structureEquals plus values within absolute tolerance `tol`.
  bool almostEquals(const CsrMatrix& other, double tol) const;

  /// Verifies all class invariants; throws std::logic_error on violation.
  void validate() const;

  /// Short human-readable summary ("1024x1024, nnz=5120").
  std::string summary() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_ptr_ = {0};
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace sts::sparse
