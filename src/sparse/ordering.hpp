#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

/// \file ordering.hpp
/// Symmetric matrix reorderings used to build the paper's preprocessed data
/// sets: reverse Cuthill–McKee (bandwidth reduction, used before IC(0) as
/// the AMD stand-in) and BFS-separator nested dissection (the stand-in for
/// METIS_NodeND in the "METIS" data set, §6.2.2). All functions return a
/// `new_to_old` permutation (see permute.hpp for the convention).

namespace sts::sparse {

/// Undirected adjacency (CSR-like, symmetrized, diagonal dropped) of a
/// square matrix pattern. The scaffolding for every ordering algorithm.
struct AdjacencyGraph {
  index_t n = 0;
  std::vector<offset_t> ptr = {0};
  std::vector<index_t> adj;

  std::span<const index_t> neighbors(index_t v) const {
    return std::span<const index_t>(adj).subspan(
        static_cast<size_t>(ptr[static_cast<size_t>(v)]),
        static_cast<size_t>(ptr[static_cast<size_t>(v) + 1] -
                            ptr[static_cast<size_t>(v)]));
  }
  index_t degree(index_t v) const {
    return static_cast<index_t>(ptr[static_cast<size_t>(v) + 1] -
                                ptr[static_cast<size_t>(v)]);
  }

  static AdjacencyGraph fromMatrixPattern(const CsrMatrix& a);
};

/// Reverse Cuthill–McKee ordering. Handles disconnected graphs (each
/// component is ordered from a pseudo-peripheral start vertex).
std::vector<index_t> reverseCuthillMcKee(const AdjacencyGraph& g);
std::vector<index_t> reverseCuthillMcKee(const CsrMatrix& a);

struct NestedDissectionOptions {
  /// Subgraphs at or below this size are ordered with RCM instead of being
  /// split further.
  index_t leaf_size = 64;
};

/// BFS-separator nested dissection: recursively bisect via the median BFS
/// level, number the two halves first and the separator last. Produces the
/// scattered-locality orderings characteristic of METIS_NodeND.
std::vector<index_t> nestedDissection(const AdjacencyGraph& g,
                                      const NestedDissectionOptions& opts = {});
std::vector<index_t> nestedDissection(const CsrMatrix& a,
                                      const NestedDissectionOptions& opts = {});

/// Deterministic pseudo-random ordering (Fisher–Yates with a fixed seed).
/// Used in tests and as a worst-case-locality baseline.
std::vector<index_t> randomOrdering(index_t n, std::uint64_t seed);

/// Bandwidth of the pattern: max |i - j| over stored entries.
index_t matrixBandwidth(const CsrMatrix& a);

}  // namespace sts::sparse
