#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "sparse/permute.hpp"

namespace sts::sparse {

namespace {

void sortRowSegments(index_t rows, std::span<const offset_t> row_ptr,
                     std::vector<index_t>& col_idx,
                     std::vector<double>& values) {
  std::vector<std::pair<index_t, double>> buf;
  for (index_t i = 0; i < rows; ++i) {
    const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
    const auto end = static_cast<size_t>(row_ptr[static_cast<size_t>(i) + 1]);
    if (std::is_sorted(col_idx.begin() + static_cast<std::ptrdiff_t>(begin),
                       col_idx.begin() + static_cast<std::ptrdiff_t>(end))) {
      continue;
    }
    buf.clear();
    buf.reserve(end - begin);
    for (size_t k = begin; k < end; ++k) buf.emplace_back(col_idx[k], values[k]);
    std::sort(buf.begin(), buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t k = begin; k < end; ++k) {
      col_idx[k] = buf[k - begin].first;
      values[k] = buf[k - begin].second;
    }
  }
}

}  // namespace

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (rows_ < 0 || cols_ < 0) {
    throw std::invalid_argument("CsrMatrix: negative dimensions");
  }
  if (row_ptr_.size() != static_cast<size_t>(rows_) + 1) {
    throw std::invalid_argument("CsrMatrix: rowPtr size must be rows+1");
  }
  if (col_idx_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: colIdx/values size mismatch");
  }
  // Bounds must hold before any row segment is touched.
  if (row_ptr_.front() != 0 ||
      row_ptr_.back() != static_cast<offset_t>(col_idx_.size())) {
    throw std::invalid_argument("CsrMatrix: rowPtr endpoints invalid");
  }
  for (size_t i = 0; i + 1 < row_ptr_.size(); ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) {
      throw std::invalid_argument("CsrMatrix: rowPtr not monotone");
    }
  }
  sortRowSegments(rows_, row_ptr_, col_idx_, values_);
  validate();
}

CsrMatrix CsrMatrix::fromTriplets(index_t rows, index_t cols,
                                  std::span<const Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("fromTriplets: negative dimensions");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      std::ostringstream os;
      os << "fromTriplets: entry (" << t.row << ", " << t.col
         << ") out of range for " << rows << "x" << cols;
      throw std::invalid_argument(os.str());
    }
  }

  // Counting sort by row, then sort each row by column and merge duplicates.
  std::vector<offset_t> row_counts(static_cast<size_t>(rows) + 1, 0);
  for (const Triplet& t : triplets) ++row_counts[static_cast<size_t>(t.row) + 1];
  std::partial_sum(row_counts.begin(), row_counts.end(), row_counts.begin());

  std::vector<index_t> cols_tmp(triplets.size());
  std::vector<double> vals_tmp(triplets.size());
  {
    std::vector<offset_t> cursor(row_counts.begin(), row_counts.end() - 1);
    for (const Triplet& t : triplets) {
      const auto k = static_cast<size_t>(cursor[static_cast<size_t>(t.row)]++);
      cols_tmp[k] = t.col;
      vals_tmp[k] = t.value;
    }
  }
  sortRowSegments(rows, row_counts, cols_tmp, vals_tmp);

  std::vector<offset_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(triplets.size());
  values.reserve(triplets.size());
  for (index_t i = 0; i < rows; ++i) {
    const auto begin = static_cast<size_t>(row_counts[static_cast<size_t>(i)]);
    const auto end = static_cast<size_t>(row_counts[static_cast<size_t>(i) + 1]);
    for (size_t k = begin; k < end; ++k) {
      if (!col_idx.empty() &&
          static_cast<size_t>(row_ptr[static_cast<size_t>(i)]) <
              col_idx.size() &&
          col_idx.back() == cols_tmp[k] &&
          static_cast<offset_t>(col_idx.size()) >
              row_ptr[static_cast<size_t>(i)]) {
        values.back() += vals_tmp[k];  // merge duplicate
      } else {
        col_idx.push_back(cols_tmp[k]);
        values.push_back(vals_tmp[k]);
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  m.validate();
  return m;
}

CsrMatrix CsrMatrix::identity(index_t n) {
  std::vector<offset_t> row_ptr(static_cast<size_t>(n) + 1);
  std::iota(row_ptr.begin(), row_ptr.end(), offset_t{0});
  std::vector<index_t> col_idx(static_cast<size_t>(n));
  std::iota(col_idx.begin(), col_idx.end(), index_t{0});
  std::vector<double> values(static_cast<size_t>(n), 1.0);
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

double CsrMatrix::at(index_t i, index_t j) const {
  const auto cols_i = rowCols(i);
  const auto it = std::lower_bound(cols_i.begin(), cols_i.end(), j);
  if (it == cols_i.end() || *it != j) return 0.0;
  const auto k = static_cast<size_t>(rowBegin(i) + (it - cols_i.begin()));
  return values_[k];
}

bool CsrMatrix::hasEntry(index_t i, index_t j) const {
  const auto cols_i = rowCols(i);
  return std::binary_search(cols_i.begin(), cols_i.end(), j);
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<offset_t> t_row_ptr(static_cast<size_t>(cols_) + 1, 0);
  for (const index_t c : col_idx_) ++t_row_ptr[static_cast<size_t>(c) + 1];
  std::partial_sum(t_row_ptr.begin(), t_row_ptr.end(), t_row_ptr.begin());

  std::vector<index_t> t_col_idx(col_idx_.size());
  std::vector<double> t_values(values_.size());
  std::vector<offset_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (offset_t k = rowBegin(i); k < rowEnd(i); ++k) {
      const auto c = static_cast<size_t>(col_idx_[static_cast<size_t>(k)]);
      const auto pos = static_cast<size_t>(cursor[c]++);
      t_col_idx[pos] = i;
      t_values[pos] = values_[static_cast<size_t>(k)];
    }
  }
  // Rows of the transpose are filled in increasing source-row order, so the
  // column indices are already sorted.
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_ = std::move(t_row_ptr);
  t.col_idx_ = std::move(t_col_idx);
  t.values_ = std::move(t_values);
  return t;
}

namespace {

template <typename Keep>
CsrMatrix filterEntries(const CsrMatrix& a, Keep keep) {
  std::vector<offset_t> row_ptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<double> values;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols_i = a.rowCols(i);
    const auto vals_i = a.rowValues(i);
    for (size_t k = 0; k < cols_i.size(); ++k) {
      if (keep(i, cols_i[k])) {
        col_idx.push_back(cols_i[k]);
        values.push_back(vals_i[k]);
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<offset_t>(col_idx.size());
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace

CsrMatrix CsrMatrix::lowerTriangle(bool include_diagonal) const {
  return filterEntries(*this, [include_diagonal](index_t i, index_t j) {
    return include_diagonal ? j <= i : j < i;
  });
}

CsrMatrix CsrMatrix::upperTriangle(bool include_diagonal) const {
  return filterEntries(*this, [include_diagonal](index_t i, index_t j) {
    return include_diagonal ? j >= i : j > i;
  });
}

bool CsrMatrix::isLowerTriangular() const {
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols_i = rowCols(i);
    if (!cols_i.empty() && cols_i.back() > i) return false;
  }
  return true;
}

bool CsrMatrix::isUpperTriangular() const {
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols_i = rowCols(i);
    if (!cols_i.empty() && cols_i.front() < i) return false;
  }
  return true;
}

bool CsrMatrix::hasFullDiagonal() const {
  if (rows_ != cols_) return false;
  for (index_t i = 0; i < rows_; ++i) {
    if (!hasEntry(i, i)) return false;
  }
  return true;
}

std::vector<double> CsrMatrix::diagonal() const {
  const index_t n = std::min(rows_, cols_);
  std::vector<double> d(static_cast<size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) d[static_cast<size_t>(i)] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::symmetricPermuted(
    std::span<const index_t> new_to_old) const {
  if (rows_ != cols_) {
    throw std::invalid_argument("symmetricPermuted: matrix must be square");
  }
  if (static_cast<index_t>(new_to_old.size()) != rows_ ||
      !isPermutation(new_to_old)) {
    throw std::invalid_argument("symmetricPermuted: not a permutation");
  }
  const std::vector<index_t> old_to_new = inversePermutation(new_to_old);

  std::vector<offset_t> row_ptr(static_cast<size_t>(rows_) + 1, 0);
  for (index_t i = 0; i < rows_; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] +
        rowNnz(new_to_old[static_cast<size_t>(i)]);
  }
  std::vector<index_t> col_idx(col_idx_.size());
  std::vector<double> values(values_.size());
  for (index_t i = 0; i < rows_; ++i) {
    const index_t old_row = new_to_old[static_cast<size_t>(i)];
    const auto cols_o = rowCols(old_row);
    const auto vals_o = rowValues(old_row);
    auto pos = static_cast<size_t>(row_ptr[static_cast<size_t>(i)]);
    for (size_t k = 0; k < cols_o.size(); ++k, ++pos) {
      col_idx[pos] = old_to_new[static_cast<size_t>(cols_o[k])];
      values[pos] = vals_o[k];
    }
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  if (static_cast<index_t>(x.size()) != cols_) {
    throw std::invalid_argument("multiply: dimension mismatch");
  }
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const auto cols_i = rowCols(i);
    const auto vals_i = rowValues(i);
    for (size_t k = 0; k < cols_i.size(); ++k) {
      acc += vals_i[k] * x[static_cast<size_t>(cols_i[k])];
    }
    y[static_cast<size_t>(i)] = acc;
  }
  return y;
}

bool CsrMatrix::structureEquals(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
}

bool CsrMatrix::almostEquals(const CsrMatrix& other, double tol) const {
  if (!structureEquals(other)) return false;
  for (size_t k = 0; k < values_.size(); ++k) {
    if (std::abs(values_[k] - other.values_[k]) > tol) return false;
  }
  return true;
}

void CsrMatrix::validate() const {
  if (row_ptr_.size() != static_cast<size_t>(rows_) + 1) {
    throw std::logic_error("CsrMatrix: rowPtr size mismatch");
  }
  if (row_ptr_.front() != 0 ||
      row_ptr_.back() != static_cast<offset_t>(col_idx_.size())) {
    throw std::logic_error("CsrMatrix: rowPtr endpoints invalid");
  }
  for (index_t i = 0; i < rows_; ++i) {
    if (rowBegin(i) > rowEnd(i)) {
      throw std::logic_error("CsrMatrix: rowPtr not monotone");
    }
    const auto cols_i = rowCols(i);
    for (size_t k = 0; k < cols_i.size(); ++k) {
      if (cols_i[k] < 0 || cols_i[k] >= cols_) {
        throw std::logic_error("CsrMatrix: column index out of range");
      }
      if (k > 0 && cols_i[k] <= cols_i[k - 1]) {
        throw std::logic_error("CsrMatrix: columns not strictly increasing");
      }
    }
  }
}

std::string CsrMatrix::summary() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << ", nnz=" << nnz();
  return os.str();
}

}  // namespace sts::sparse
