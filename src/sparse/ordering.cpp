#include "sparse/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace sts::sparse {

AdjacencyGraph AdjacencyGraph::fromMatrixPattern(const CsrMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("AdjacencyGraph: matrix must be square");
  }
  const index_t n = a.rows();
  // Count symmetrized degrees (entry + mirrored entry, diagonal dropped).
  std::vector<offset_t> count(static_cast<size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : a.rowCols(i)) {
      if (j == i) continue;
      ++count[static_cast<size_t>(i) + 1];
      ++count[static_cast<size_t>(j) + 1];
    }
  }
  std::partial_sum(count.begin(), count.end(), count.begin());

  AdjacencyGraph g;
  g.n = n;
  g.adj.resize(static_cast<size_t>(count.back()));
  std::vector<offset_t> cursor(count.begin(), count.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : a.rowCols(i)) {
      if (j == i) continue;
      g.adj[static_cast<size_t>(cursor[static_cast<size_t>(i)]++)] = j;
      g.adj[static_cast<size_t>(cursor[static_cast<size_t>(j)]++)] = i;
    }
  }
  // Sort and dedupe each neighborhood (pattern may be non-symmetric; the
  // mirrored copy can duplicate an existing entry).
  g.ptr.assign(static_cast<size_t>(n) + 1, 0);
  offset_t write = 0;
  for (index_t v = 0; v < n; ++v) {
    const auto begin = g.adj.begin() + static_cast<std::ptrdiff_t>(
                                           count[static_cast<size_t>(v)]);
    const auto end = g.adj.begin() + static_cast<std::ptrdiff_t>(
                                         count[static_cast<size_t>(v) + 1]);
    std::sort(begin, end);
    const auto unique_end = std::unique(begin, end);
    for (auto it = begin; it != unique_end; ++it) {
      g.adj[static_cast<size_t>(write++)] = *it;
    }
    g.ptr[static_cast<size_t>(v) + 1] = write;
  }
  g.adj.resize(static_cast<size_t>(write));
  return g;
}

namespace {

/// BFS over a vertex subset identified by `in_subset` stamps; writes the
/// level of each reached vertex into `level` (stamped with `stamp`).
/// Returns the reached vertices grouped by level.
struct BfsResult {
  std::vector<index_t> order;       // reached vertices, BFS order
  std::vector<offset_t> level_ptr;  // level boundaries into `order`
};

BfsResult bfsLevels(const AdjacencyGraph& g, index_t start,
                    std::span<const int> subset_stamp, int stamp,
                    std::vector<int>& visit_stamp, int visit_mark) {
  BfsResult r;
  r.order.push_back(start);
  r.level_ptr = {0, 1};
  visit_stamp[static_cast<size_t>(start)] = visit_mark;
  size_t frontier_begin = 0;
  while (frontier_begin < r.order.size()) {
    const size_t frontier_end = r.order.size();
    for (size_t q = frontier_begin; q < frontier_end; ++q) {
      for (const index_t u : g.neighbors(r.order[q])) {
        if (subset_stamp[static_cast<size_t>(u)] != stamp) continue;
        if (visit_stamp[static_cast<size_t>(u)] == visit_mark) continue;
        visit_stamp[static_cast<size_t>(u)] = visit_mark;
        r.order.push_back(u);
      }
    }
    frontier_begin = frontier_end;
    if (r.order.size() > static_cast<size_t>(r.level_ptr.back())) {
      r.level_ptr.push_back(static_cast<offset_t>(r.order.size()));
    }
  }
  return r;
}

/// George–Liu style pseudo-peripheral vertex: repeat BFS from the farthest
/// minimum-degree vertex until the eccentricity stops increasing.
index_t pseudoPeripheral(const AdjacencyGraph& g, index_t start,
                         std::span<const int> subset_stamp, int stamp,
                         std::vector<int>& visit_stamp, int& visit_mark) {
  index_t v = start;
  size_t ecc = 0;
  for (int iter = 0; iter < 8; ++iter) {
    ++visit_mark;
    const BfsResult r =
        bfsLevels(g, v, subset_stamp, stamp, visit_stamp, visit_mark);
    const size_t levels = r.level_ptr.size() - 1;
    if (levels <= ecc) break;
    ecc = levels;
    // Farthest level, minimum degree within it.
    const auto last_begin =
        static_cast<size_t>(r.level_ptr[r.level_ptr.size() - 2]);
    index_t best = r.order[last_begin];
    for (size_t q = last_begin; q < r.order.size(); ++q) {
      if (g.degree(r.order[q]) < g.degree(best)) best = r.order[q];
    }
    v = best;
  }
  return v;
}

}  // namespace

std::vector<index_t> reverseCuthillMcKee(const AdjacencyGraph& g) {
  const index_t n = g.n;
  std::vector<index_t> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<int> subset_stamp(static_cast<size_t>(n), 1);  // whole graph
  std::vector<int> visit_stamp(static_cast<size_t>(n), 0);
  std::vector<bool> placed(static_cast<size_t>(n), false);
  int visit_mark = 0;
  std::vector<index_t> nbrs;

  for (index_t seed = 0; seed < n; ++seed) {
    if (placed[static_cast<size_t>(seed)]) continue;
    const index_t start = pseudoPeripheral(g, seed, subset_stamp, 1,
                                           visit_stamp, visit_mark);
    // Cuthill–McKee BFS: neighbors appended in increasing-degree order.
    size_t head = order.size();
    order.push_back(start);
    placed[static_cast<size_t>(start)] = true;
    while (head < order.size()) {
      const index_t v = order[head++];
      nbrs.clear();
      for (const index_t u : g.neighbors(v)) {
        if (!placed[static_cast<size_t>(u)]) {
          placed[static_cast<size_t>(u)] = true;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&g](index_t a, index_t b) {
        const index_t da = g.degree(a), db = g.degree(b);
        return da != db ? da < db : a < b;
      });
      order.insert(order.end(), nbrs.begin(), nbrs.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<index_t> reverseCuthillMcKee(const CsrMatrix& a) {
  return reverseCuthillMcKee(AdjacencyGraph::fromMatrixPattern(a));
}

namespace {

struct NdContext {
  const AdjacencyGraph& g;
  const NestedDissectionOptions& opts;
  std::vector<int> subset_stamp;
  std::vector<int> visit_stamp;
  int next_stamp = 1;
  int visit_mark = 0;
  std::vector<index_t> output;

  explicit NdContext(const AdjacencyGraph& graph,
                     const NestedDissectionOptions& options)
      : g(graph),
        opts(options),
        subset_stamp(static_cast<size_t>(graph.n), 0),
        visit_stamp(static_cast<size_t>(graph.n), 0) {
    output.reserve(static_cast<size_t>(graph.n));
  }

  /// Orders `verts` (one arbitrary subset, possibly disconnected), appending
  /// the result to `output`.
  void orderSubset(std::vector<index_t> verts) {
    if (verts.empty()) return;
    if (static_cast<index_t>(verts.size()) <= opts.leaf_size) {
      orderLeaf(verts);
      return;
    }
    const int stamp = next_stamp++;
    for (const index_t v : verts) subset_stamp[static_cast<size_t>(v)] = stamp;

    // Enumerate connected components of the subset up front, so later BFS
    // passes (which reuse the visit-mark array) cannot confuse membership.
    std::vector<std::vector<index_t>> components;
    ++visit_mark;
    for (const index_t seed : verts) {
      if (visit_stamp[static_cast<size_t>(seed)] == visit_mark) continue;
      BfsResult comp =
          bfsLevels(g, seed, subset_stamp, stamp, visit_stamp, visit_mark);
      components.push_back(std::move(comp.order));
    }

    for (std::vector<index_t>& comp_verts : components) {
      if (static_cast<index_t>(comp_verts.size()) <= opts.leaf_size) {
        orderLeaf(comp_verts);
        continue;
      }
      // Child recursions re-stamp their own subsets, which can invalidate
      // the parent's stamp for vertices of *previous* components; this
      // component's vertices are untouched, but re-stamp defensively.
      const int comp_stamp = next_stamp++;
      for (const index_t v : comp_verts) {
        subset_stamp[static_cast<size_t>(v)] = comp_stamp;
      }
      const index_t start = pseudoPeripheral(g, comp_verts.front(),
                                             subset_stamp, comp_stamp,
                                             visit_stamp, visit_mark);
      ++visit_mark;
      const BfsResult levels = bfsLevels(g, start, subset_stamp, comp_stamp,
                                         visit_stamp, visit_mark);
      const size_t num_levels = levels.level_ptr.size() - 1;
      if (num_levels < 3) {
        std::vector<index_t> leaf(levels.order.begin(), levels.order.end());
        orderLeaf(leaf);
        continue;
      }
      // Median level by cumulative vertex count becomes the separator.
      const auto half = static_cast<offset_t>(levels.order.size() / 2);
      size_t sep_level = 1;
      while (sep_level + 1 < num_levels - 1 &&
             levels.level_ptr[sep_level + 1] < half) {
        ++sep_level;
      }
      std::vector<index_t> left, right, separator;
      for (size_t lv = 0; lv < num_levels; ++lv) {
        const auto begin = static_cast<size_t>(levels.level_ptr[lv]);
        const auto end = static_cast<size_t>(levels.level_ptr[lv + 1]);
        auto& dest =
            (lv < sep_level) ? left : (lv == sep_level ? separator : right);
        dest.insert(dest.end(), levels.order.begin() + begin,
                    levels.order.begin() + end);
      }
      orderSubset(std::move(left));
      orderSubset(std::move(right));
      // Separator vertices are numbered last (ND convention); order them
      // among themselves by original index for determinism.
      std::sort(separator.begin(), separator.end());
      output.insert(output.end(), separator.begin(), separator.end());
    }
  }

  void orderLeaf(std::vector<index_t>& verts) {
    // RCM on the induced subgraph, realized by sorting with a BFS pass:
    // small leaves only, so a simple degree-sorted BFS is enough.
    const int stamp = next_stamp++;
    for (const index_t v : verts) subset_stamp[static_cast<size_t>(v)] = stamp;
    std::sort(verts.begin(), verts.end());
    std::vector<index_t> local_order;
    local_order.reserve(verts.size());
    ++visit_mark;
    for (const index_t seed : verts) {
      if (visit_stamp[static_cast<size_t>(seed)] == visit_mark) continue;
      const BfsResult comp =
          bfsLevels(g, seed, subset_stamp, stamp, visit_stamp, visit_mark);
      local_order.insert(local_order.end(), comp.order.begin(),
                         comp.order.end());
    }
    std::reverse(local_order.begin(), local_order.end());
    output.insert(output.end(), local_order.begin(), local_order.end());
  }
};

}  // namespace

std::vector<index_t> nestedDissection(const AdjacencyGraph& g,
                                      const NestedDissectionOptions& opts) {
  NdContext ctx(g, opts);
  std::vector<index_t> all(static_cast<size_t>(g.n));
  std::iota(all.begin(), all.end(), index_t{0});
  ctx.orderSubset(std::move(all));
  if (ctx.output.size() != static_cast<size_t>(g.n)) {
    throw std::logic_error("nestedDissection: lost vertices during recursion");
  }
  return std::move(ctx.output);
}

std::vector<index_t> nestedDissection(const CsrMatrix& a,
                                      const NestedDissectionOptions& opts) {
  return nestedDissection(AdjacencyGraph::fromMatrixPattern(a), opts);
}

std::vector<index_t> randomOrdering(index_t n, std::uint64_t seed) {
  std::vector<index_t> p(static_cast<size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  std::mt19937_64 rng(seed);
  for (size_t i = p.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng() % i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

index_t matrixBandwidth(const CsrMatrix& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (const index_t j : a.rowCols(i)) {
      bw = std::max(bw, static_cast<index_t>(std::abs(i - j)));
    }
  }
  return bw;
}

}  // namespace sts::sparse
