#include "sparse/permute.hpp"

#include <numeric>
#include <stdexcept>

namespace sts::sparse {

bool isPermutation(std::span<const index_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (const index_t v : p) {
    if (v < 0 || static_cast<size_t>(v) >= p.size() ||
        seen[static_cast<size_t>(v)]) {
      return false;
    }
    seen[static_cast<size_t>(v)] = true;
  }
  return true;
}

std::vector<index_t> inversePermutation(std::span<const index_t> p) {
  if (!isPermutation(p)) {
    throw std::invalid_argument("inversePermutation: input not a permutation");
  }
  std::vector<index_t> inv(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    inv[static_cast<size_t>(p[i])] = static_cast<index_t>(i);
  }
  return inv;
}

std::vector<index_t> identityPermutation(index_t n) {
  std::vector<index_t> p(static_cast<size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return p;
}

std::vector<double> permuteVector(std::span<const double> v,
                                  std::span<const index_t> new_to_old) {
  if (v.size() != new_to_old.size()) {
    throw std::invalid_argument("permuteVector: size mismatch");
  }
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[i] = v[static_cast<size_t>(new_to_old[i])];
  }
  return out;
}

std::vector<double> unpermuteVector(std::span<const double> v,
                                    std::span<const index_t> new_to_old) {
  if (v.size() != new_to_old.size()) {
    throw std::invalid_argument("unpermuteVector: size mismatch");
  }
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    out[static_cast<size_t>(new_to_old[i])] = v[i];
  }
  return out;
}

std::vector<index_t> composePermutations(std::span<const index_t> a,
                                         std::span<const index_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("composePermutations: size mismatch");
  }
  std::vector<index_t> c(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    c[i] = a[static_cast<size_t>(b[i])];
  }
  return c;
}

}  // namespace sts::sparse
