#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

/// \file permute.hpp
/// Permutation helpers. Convention used throughout the library:
/// a permutation vector `new_to_old` maps *new* positions to *old* ones,
/// i.e. permuted[i] = original[new_to_old[i]]. This matches the reordering
/// of Section 5 of the paper, where the schedule dictates the new order.

namespace sts::sparse {

/// True iff `p` contains each of 0..p.size()-1 exactly once.
bool isPermutation(std::span<const index_t> p);

/// inv[p[i]] = i. Throws std::invalid_argument if `p` is not a permutation.
std::vector<index_t> inversePermutation(std::span<const index_t> p);

/// [0, 1, ..., n-1].
std::vector<index_t> identityPermutation(index_t n);

/// out[i] = v[new_to_old[i]].
std::vector<double> permuteVector(std::span<const double> v,
                                  std::span<const index_t> new_to_old);

/// Inverse transform: out[new_to_old[i]] = v[i]. Used to map a solution of
/// the permuted system back to the original unknown ordering.
std::vector<double> unpermuteVector(std::span<const double> v,
                                    std::span<const index_t> new_to_old);

/// c[i] = a[b[i]] — composition "apply b, then a" in new_to_old convention.
std::vector<index_t> composePermutations(std::span<const index_t> a,
                                         std::span<const index_t> b);

}  // namespace sts::sparse
