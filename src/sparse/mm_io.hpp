#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

/// \file mm_io.hpp
/// Matrix Market coordinate-format I/O. SuiteSparse matrices ship in this
/// format; with these routines real collection matrices can be dropped into
/// the benchmark harness offline (see README "Using real SuiteSparse
/// matrices").
///
/// Supported on read: `matrix coordinate {real|integer|pattern}
/// {general|symmetric}`; pattern entries get value 1.0; symmetric inputs are
/// mirrored (diagonal not duplicated).

namespace sts::sparse {

/// Parsed Matrix Market header + entries prior to CSR assembly.
struct MatrixMarketData {
  index_t rows = 0;
  index_t cols = 0;
  bool symmetric = false;
  bool pattern = false;
  std::vector<Triplet> entries;  ///< already mirrored if symmetric
};

/// Reads from a stream. Throws std::runtime_error with a line number on any
/// format violation.
MatrixMarketData readMatrixMarket(std::istream& in);

/// Reads a file; throws std::runtime_error if it cannot be opened.
MatrixMarketData readMatrixMarketFile(const std::string& path);

/// Convenience: read + assemble.
CsrMatrix readCsrFromMatrixMarketFile(const std::string& path);

/// Writes `m` as `matrix coordinate real general` with 17 significant
/// digits (lossless double round-trip).
void writeMatrixMarket(std::ostream& out, const CsrMatrix& m);
void writeMatrixMarketFile(const std::string& path, const CsrMatrix& m);

}  // namespace sts::sparse
