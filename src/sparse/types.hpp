#pragma once

#include <cstdint>

/// \file types.hpp
/// Fundamental index and entry types shared across the whole library.

namespace sts {

/// Row/column/vertex index. 32-bit: the library targets matrices up to a few
/// million rows (laptop-scale SpTRSV), where 32-bit indices halve the memory
/// traffic of every structural array.
using index_t = std::int32_t;

/// Offset into a nonzero array (CSR row pointers, adjacency pointers).
/// 64-bit so that nnz counts never overflow even for dense-ish inputs.
using offset_t = std::int64_t;

/// A single (row, col, value) matrix entry used by builders and I/O.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  double value = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

}  // namespace sts
