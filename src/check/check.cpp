#include "check/check.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>

namespace sts::check {

namespace {

std::string at(const char* what, long long value) {
  return std::string(what) + " " + std::to_string(value);
}

}  // namespace

void enforce(const CheckResult& result, const char* who) {
  if (!result.ok) {
    throw std::logic_error(std::string(who) + ": " + result.message);
  }
}

CheckResult validateSchedule(const dag::Dag& dag,
                             const core::Schedule& schedule) {
  const sts::index_t n = dag.numVertices();
  if (schedule.numVertices() != n) {
    return CheckResult::failure("schedule covers " +
                                std::to_string(schedule.numVertices()) +
                                " vertices, DAG has " + std::to_string(n));
  }
  const int cores = schedule.numCores();
  const sts::index_t steps = schedule.numSupersteps();
  if (n > 0 && (cores < 1 || steps < 1)) {
    return CheckResult::failure("non-empty schedule with " +
                                std::to_string(cores) + " cores, " +
                                std::to_string(steps) + " supersteps");
  }
  for (sts::index_t v = 0; v < n; ++v) {
    if (schedule.coreOf(v) < 0 || schedule.coreOf(v) >= cores) {
      return CheckResult::failure("core assignment out of range at " +
                                  at("vertex", v));
    }
    if (schedule.superstepOf(v) < 0 || schedule.superstepOf(v) >= steps) {
      return CheckResult::failure("superstep assignment out of range at " +
                                  at("vertex", v));
    }
  }

  // Execution-order coverage: a permutation of the vertex set, with every
  // group holding exactly the vertices assigned to it. pos[] doubles as
  // the in-order position for the same-superstep edge check below.
  const auto order = schedule.executionOrder();
  if (order.size() != static_cast<std::size_t>(n)) {
    return CheckResult::failure(
        "execution order lists " + std::to_string(order.size()) +
        " vertices, schedule has " + std::to_string(n));
  }
  std::vector<sts::offset_t> pos(static_cast<std::size_t>(n), -1);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const sts::index_t v = order[k];
    if (v < 0 || v >= n) {
      return CheckResult::failure("execution order names " + at("vertex", v));
    }
    if (pos[static_cast<std::size_t>(v)] != -1) {
      return CheckResult::failure("execution order repeats " + at("vertex", v));
    }
    pos[static_cast<std::size_t>(v)] = static_cast<sts::offset_t>(k);
  }
  for (sts::index_t s = 0; s < steps; ++s) {
    for (int p = 0; p < cores; ++p) {
      for (const sts::index_t v : schedule.group(s, p)) {
        if (schedule.coreOf(v) != p || schedule.superstepOf(v) != s) {
          return CheckResult::failure(
              at("vertex", v) + " listed in group (" + std::to_string(s) +
              ", " + std::to_string(p) + ") but assigned (" +
              std::to_string(schedule.superstepOf(v)) + ", " +
              std::to_string(schedule.coreOf(v)) + ")");
        }
      }
    }
  }

  // Definition 2.1: every edge resolves at a barrier or inside one core's
  // in-order group. Same-superstep cross-core edges are invalid however
  // the groups are ordered; same-group edges must respect the order.
  for (sts::index_t u = 0; u < n; ++u) {
    for (const sts::index_t v : dag.children(u)) {
      const sts::index_t su = schedule.superstepOf(u);
      const sts::index_t sv = schedule.superstepOf(v);
      if (su > sv) {
        return CheckResult::failure(
            "edge (" + std::to_string(u) + ", " + std::to_string(v) +
            ") runs against the superstep order (" + std::to_string(su) +
            " > " + std::to_string(sv) + ")");
      }
      if (su == sv) {
        if (schedule.coreOf(u) != schedule.coreOf(v)) {
          return CheckResult::failure(
              "same-superstep edge (" + std::to_string(u) + ", " +
              std::to_string(v) + ") crosses cores " +
              std::to_string(schedule.coreOf(u)) + " -> " +
              std::to_string(schedule.coreOf(v)));
        }
        if (pos[static_cast<std::size_t>(u)] >=
            pos[static_cast<std::size_t>(v)]) {
          return CheckResult::failure(
              "intra-group edge (" + std::to_string(u) + ", " +
              std::to_string(v) + ") violates the execution order");
        }
      }
    }
  }
  return {};
}

CheckResult validateRankMap(int width, int target,
                            std::span<const int> rank_map) {
  if (width < 1 || target < 1 || target > width) {
    return CheckResult::failure("fold " + std::to_string(width) + " -> " +
                                std::to_string(target) + " is not a fold");
  }
  if (rank_map.size() != static_cast<std::size_t>(width)) {
    return CheckResult::failure("rank map has " +
                                std::to_string(rank_map.size()) +
                                " entries for width " + std::to_string(width));
  }
  std::vector<bool> hit(static_cast<std::size_t>(target), false);
  for (int p = 0; p < width; ++p) {
    const int q = rank_map[static_cast<std::size_t>(p)];
    if (q < 0 || q >= target) {
      return CheckResult::failure("rank map sends " + at("rank", p) +
                                  " outside [0, " + std::to_string(target) +
                                  ")");
    }
    hit[static_cast<std::size_t>(q)] = true;
  }
  for (int q = 0; q < target; ++q) {
    if (!hit[static_cast<std::size_t>(q)]) {
      return CheckResult::failure("rank map never reaches " + at("slot", q) +
                                  " (an idle folded rank)");
    }
  }
  return {};
}

CheckResult validateFoldedLists(const exec::detail::FoldedLists& lists,
                                sts::index_t num_steps,
                                sts::index_t num_rows) {
  if (lists.verts.size() != lists.step_ptr.size() || lists.verts.empty()) {
    return CheckResult::failure(
        "lists have " + std::to_string(lists.verts.size()) +
        " vertex threads, " + std::to_string(lists.step_ptr.size()) +
        " boundary threads");
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_rows), false);
  sts::index_t covered = 0;
  for (std::size_t t = 0; t < lists.verts.size(); ++t) {
    const auto& ptr = lists.step_ptr[t];
    if (ptr.size() != static_cast<std::size_t>(num_steps) + 1 ||
        ptr.front() != 0 ||
        ptr.back() != static_cast<sts::offset_t>(lists.verts[t].size())) {
      return CheckResult::failure("thread " + std::to_string(t) +
                                  " has inconsistent superstep boundaries");
    }
    if (!std::is_sorted(ptr.begin(), ptr.end())) {
      return CheckResult::failure("thread " + std::to_string(t) +
                                  " has decreasing superstep boundaries");
    }
    for (const sts::index_t v : lists.verts[t]) {
      if (v < 0 || v >= num_rows) {
        return CheckResult::failure("thread " + std::to_string(t) +
                                    " lists " + at("row", v));
      }
      if (seen[static_cast<std::size_t>(v)]) {
        return CheckResult::failure(at("row", v) +
                                    " appears twice across the work lists");
      }
      seen[static_cast<std::size_t>(v)] = true;
      ++covered;
    }
  }
  if (covered != num_rows) {
    return CheckResult::failure("work lists cover " + std::to_string(covered) +
                                " of " + std::to_string(num_rows) + " rows");
  }
  return {};
}

CheckResult validateSlabPlan(const sparse::CsrMatrix& lower,
                             const exec::detail::FoldedLists& lists,
                             const exec::detail::SlabPlan& plan) {
  using exec::detail::kSlabAlignment;
  if (plan.threads.size() != lists.verts.size()) {
    return CheckResult::failure(
        "plan has " + std::to_string(plan.threads.size()) +
        " slabs for " + std::to_string(lists.verts.size()) + " threads");
  }
  std::vector<bool> seen(static_cast<std::size_t>(lower.rows()), false);
  for (std::size_t t = 0; t < plan.threads.size(); ++t) {
    const exec::detail::SlabThread& slab = plan.threads[t];
    if (slab.step_ptr != lists.step_ptr[t]) {
      return CheckResult::failure(
          "slab " + std::to_string(t) +
          " superstep boundaries diverge from the folded work list");
    }
    const std::byte* base = slab.bytes.data();
    if (reinterpret_cast<std::uintptr_t>(base) % kSlabAlignment != 0) {
      return CheckResult::failure("slab " + std::to_string(t) +
                                  " base is not " +
                                  std::to_string(kSlabAlignment) +
                                  "-byte aligned");
    }
    const std::byte* p = base;
    const std::byte* end = base + slab.bytes.size();
    for (std::size_t k = 0; k < lists.verts[t].size(); ++k) {
      if (reinterpret_cast<std::uintptr_t>(p) % alignof(double) != 0) {
        return CheckResult::failure("slab " + std::to_string(t) +
                                    " record " + std::to_string(k) +
                                    " is misaligned");
      }
      if (p + sizeof(exec::detail::SlabRecordHeader) > end) {
        return CheckResult::failure("slab " + std::to_string(t) +
                                    " truncates record " + std::to_string(k));
      }
      const exec::detail::SlabRecordView rec = exec::detail::slabRecordAt(p);
      if (rec.next > end) {
        return CheckResult::failure("slab " + std::to_string(t) +
                                    " truncates record " + std::to_string(k));
      }
      const sts::index_t row = lists.verts[t][k];
      if (rec.row != row) {
        return CheckResult::failure(
            "slab " + std::to_string(t) + " record " + std::to_string(k) +
            " packs " + at("row", rec.row) + ", execution order says " +
            std::to_string(row));
      }
      if (seen[static_cast<std::size_t>(row)]) {
        return CheckResult::failure(at("row", row) +
                                    " is packed twice across the plan");
      }
      seen[static_cast<std::size_t>(row)] = true;
      // Payload fidelity: same off-diagonals in the same (CSR) order, diag
      // from the row's last stored entry — the operands the shared-CSR
      // kernels read, which is what makes slab results bitwise-equal.
      const auto cols = lower.rowCols(row);
      const auto vals = lower.rowValues(row);
      if (cols.empty() ||
          rec.nnz != cols.size() - 1 || rec.diag != vals.back()) {
        return CheckResult::failure(at("row", row) +
                                    " header/diagonal diverges from the CSR");
      }
      for (std::size_t i = 0; i < rec.nnz; ++i) {
        if (rec.cols[i] != cols[i] || rec.vals[i] != vals[i]) {
          return CheckResult::failure(at("row", row) +
                                      " off-diagonals diverge from the CSR");
        }
      }
      p = rec.next;
    }
  }
  // Coverage across the whole plan (the per-record uniqueness pass above
  // makes this a pure count check).
  for (sts::index_t r = 0; r < lower.rows(); ++r) {
    if (!seen[static_cast<std::size_t>(r)]) {
      return CheckResult::failure(at("row", r) + " is missing from the plan");
    }
  }
  return {};
}

CheckResult validateSspPlan(const sparse::CsrMatrix& lower,
                            const exec::detail::FoldedLists& lists,
                            sts::index_t num_steps) {
  const CheckResult base =
      validateFoldedLists(lists, num_steps, lower.rows());
  if (!base.ok) return base;
  // Re-derive the owner / superstep / stream-position maps the SSP guard
  // and chunk walk rely on.
  const auto n = static_cast<std::size_t>(lower.rows());
  std::vector<int> owner(n, 0);
  std::vector<sts::index_t> step(n, 0);
  std::vector<sts::offset_t> pos(n, 0);
  for (std::size_t t = 0; t < lists.verts.size(); ++t) {
    const auto& ptr = lists.step_ptr[t];
    for (sts::index_t s = 0; s < num_steps; ++s) {
      const auto begin = static_cast<std::size_t>(ptr[static_cast<std::size_t>(s)]);
      const auto end =
          static_cast<std::size_t>(ptr[static_cast<std::size_t>(s) + 1]);
      for (std::size_t k = begin; k < end; ++k) {
        const auto v = static_cast<std::size_t>(lists.verts[t][k]);
        owner[v] = static_cast<int>(t);
        step[v] = s;
        pos[v] = static_cast<sts::offset_t>(k);
      }
    }
  }
  for (sts::index_t i = 0; i < lower.rows(); ++i) {
    const auto cols = lower.rowCols(i);
    const auto ui = static_cast<std::size_t>(i);
    // All entries but the last (the diagonal) are dependencies.
    for (std::size_t k = 0; k + 1 < cols.size(); ++k) {
      const sts::index_t j = cols[k];
      const auto uj = static_cast<std::size_t>(j);
      if (owner[uj] == owner[ui]) {
        if (pos[uj] >= pos[ui]) {
          return CheckResult::failure(
              "same-thread dependency " + std::to_string(j) + " -> " +
              std::to_string(i) + " runs against thread " +
              std::to_string(owner[ui]) + "'s stream order");
        }
      } else if (step[uj] >= step[ui]) {
        return CheckResult::failure(
            "cross-thread dependency " + std::to_string(j) + " -> " +
            std::to_string(i) + " is not strictly earlier (superstep " +
            std::to_string(step[uj]) + " >= " + std::to_string(step[ui]) +
            "); staleness 0 would not degenerate to the exact walk");
      }
    }
  }
  return {};
}

CheckResult auditCoreGrants(std::span<const int> universe,
                            std::span<const std::vector<int>> live_grants) {
  std::unordered_set<int> pool(universe.begin(), universe.end());
  std::unordered_set<int> leased;
  for (std::size_t g = 0; g < live_grants.size(); ++g) {
    for (const int id : live_grants[g]) {
      if (pool.find(id) == pool.end()) {
        return CheckResult::failure("grant " + std::to_string(g) +
                                    " leases " + at("core", id) +
                                    " outside the budget's universe");
      }
      if (!leased.insert(id).second) {
        return CheckResult::failure("grant " + std::to_string(g) +
                                    " overlaps another live grant on " +
                                    at("core", id));
      }
    }
  }
  return {};
}

}  // namespace sts::check
