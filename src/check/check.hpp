#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "dag/dag.hpp"
#include "exec/elastic.hpp"
#include "exec/slab.hpp"
#include "sparse/csr.hpp"

/// \file check.hpp
/// Deep invariant validators for the artifacts the pipeline hands between
/// layers: schedules (Def. 2.1), fold rank maps, folded work lists, slab
/// storage plans, and core-budget grants. Each validator re-derives the
/// invariant from first principles — it shares no code with the
/// construction it audits, so a bug in the builder cannot hide in the
/// checker.
///
/// Two ways in:
///
///  * Tests call the validators directly (tests/test_check.cpp), both on
///    shipped construction paths (which must validate clean) and on
///    hand-crafted invalid inputs (which must be rejected).
///  * `STS_CHECKS=1` builds (-DSTS_CHECKS=ON) run them automatically at
///    every construction site — schedule analysis, folding, slab builds,
///    core-grant accounting — and throw std::logic_error on violation.
///    The hooks compile away entirely in default builds, same pattern as
///    STS_TRACING; see docs/STATIC_ANALYSIS.md for the invariant table.
#ifndef STS_CHECKS
#define STS_CHECKS 0
#endif

namespace sts::check {

/// Validator outcome: `ok`, or a violation description naming the first
/// offending element (validators stop at the first violation).
struct CheckResult {
  bool ok = true;
  std::string message;

  static CheckResult failure(std::string message) {
    return CheckResult{false, std::move(message)};
  }
};

/// Throws std::logic_error("<who>: <message>") unless `result.ok`.
void enforce(const CheckResult& result, const char* who);

/// Definition 2.1 plus coverage, audited independently of
/// core::validateSchedule:
///  * assignment arrays sized to the DAG, cores in [0, numCores),
///    supersteps in [0, numSupersteps);
///  * the execution order covers every vertex exactly once, and group
///    (s, p) holds exactly the vertices with that assignment;
///  * every DAG edge (u, v) is satisfied by the superstep order:
///    superstep(u) < superstep(v), or equal-superstep with core(u) ==
///    core(v) and u before v in the group's execution order.
CheckResult validateSchedule(const dag::Dag& dag,
                             const core::Schedule& schedule);

/// A fold map's "bijectivity" invariant: `rank_map` has `width` entries,
/// every value lands in [0, target), and every target slot is hit at least
/// once — i.e. the induced map on rank classes is a bijection onto
/// [0, target), so folding never silently drops an execution slot (an
/// empty folded rank would idle a granted core forever). Both shipped
/// policies guarantee this: kModulo by construction, kBinPack because an
/// empty slot always minimizes the makespan delta of the next rank.
CheckResult validateRankMap(int width, int target,
                            std::span<const int> rank_map);

/// Folded work lists cover [0, num_rows) exactly once with consistent
/// superstep boundaries: per thread, step_ptr has num_steps + 1 monotone
/// entries from 0 to the thread's vertex count; across threads, every row
/// appears exactly once.
CheckResult validateFoldedLists(const exec::detail::FoldedLists& lists,
                                sts::index_t num_steps,
                                sts::index_t num_rows);

/// A slab plan is a faithful re-encoding of (lower, lists):
///  * one slab per folded thread, step_ptr equal to the work list's;
///  * record k of thread t packs exactly row lists.verts[t][k]
///    (execution-order match), so every row appears exactly once;
///  * field alignment: each slab base is kSlabAlignment-aligned and every
///    record boundary (hence every header/diag/cols/vals field) stays
///    8-byte aligned;
///  * record payloads match the CSR source: off-diagonal cols/vals in
///    CSR order, diag from the row's last stored entry.
CheckResult validateSlabPlan(const sparse::CsrMatrix& lower,
                             const exec::detail::FoldedLists& lists,
                             const exec::detail::SlabPlan& plan);

/// An SSP execution plan (exec/ssp.hpp) is a valid bounded-staleness
/// walk of `lower`:
///  * the work lists satisfy validateFoldedLists over
///    (num_steps, lower.rows());
///  * every same-thread dependency (off-diagonal entry whose operand row
///    lives on the same thread) appears EARLIER in that thread's stream
///    order, so it is satisfied within any chunk width;
///  * every cross-thread dependency sits in a STRICTLY earlier superstep —
///    the precondition that makes staleness 0 (chunk width 1) bitwise
///    equal to the exact BSP walk, because the SspGuard then never fires.
CheckResult validateSspPlan(const sparse::CsrMatrix& lower,
                            const exec::detail::FoldedLists& lists,
                            sts::index_t num_steps);

/// Core-set grant audit: every live grant's ids are distinct members of
/// `universe`, and the grants are pairwise disjoint — the "never overlap"
/// invariant placement relies on (engine/core_budget.hpp).
CheckResult auditCoreGrants(std::span<const int> universe,
                            std::span<const std::vector<int>> live_grants);

}  // namespace sts::check
