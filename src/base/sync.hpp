#pragma once

#include <mutex>

#include "base/thread_annotations.hpp"

/// \file sync.hpp
/// Annotated synchronization primitives: `base::Mutex` and the RAII
/// `base::MutexLock`, thin zero-overhead wrappers over `std::mutex` /
/// `std::unique_lock` that carry the Clang thread-safety attributes
/// libstdc++'s types lack. Every mutex-protected structure in the repo
/// (engine::RequestQueue, engine::CoreBudget, engine::ContextPool,
/// engine::SolverEngine, obs::Registry, exec::detail::TeamPlanCache)
/// uses these so the clang CI job can prove the lock discipline — see
/// base/thread_annotations.hpp and docs/STATIC_ANALYSIS.md.
///
/// Two usage rules keep the static analysis exact:
///
///  1. Lock with `MutexLock lock(mu_);` (scoped), never bare
///     lock()/unlock() pairs across branches.
///  2. Condition-variable waits spell the predicate as an explicit
///     `while (!pred) cv_.wait(lock.native());` loop in the locking
///     function's own scope — a predicate lambda is analyzed as a
///     separate unannotated function and would (correctly) be flagged
///     for touching guarded state.

namespace sts::base {

/// A std::mutex that Clang's thread-safety analysis can see: the
/// capability named by STS_GUARDED_BY / STS_REQUIRES annotations.
class STS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STS_ACQUIRE() { mu_.lock(); }
  void unlock() STS_RELEASE() { mu_.unlock(); }
  bool try_lock() STS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a base::Mutex. Holds a std::unique_lock internally so
/// condition variables can wait on it via native(); to the analysis the
/// capability is held from construction to destruction — the correct
/// static approximation of a cv wait, which always reacquires before
/// returning (and before evaluating any predicate).
class STS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() STS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying std::unique_lock, for std::condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace sts::base
