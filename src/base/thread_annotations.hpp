#pragma once

/// \file thread_annotations.hpp
/// Portable Clang thread-safety-analysis annotation macros.
///
/// The repo's concurrency contracts — "the queue mutex is held only to
/// move request records", "outstanding grants are disjoint", "stats_mu
/// serializes the submit and batch-completion paths" — were prose in
/// docs/ARCHITECTURE.md and header comments, certified only dynamically
/// (the TSan CI job). These macros turn them into compiler-checked facts:
/// under Clang, `-Wthread-safety` (promoted to an error in the clang CI
/// job) proves at compile time that every access to an `STS_GUARDED_BY`
/// member happens with its mutex held, that `STS_REQUIRES` callees are
/// only entered under the right lock, and that every acquire has exactly
/// one release on every path. Off Clang (GCC, MSVC) every macro expands
/// to nothing, so the annotations cost no portability.
///
/// Apply them via the annotated wrapper types in base/sync.hpp —
/// `std::mutex` itself carries no capability attributes in libstdc++, so
/// the analysis cannot see through `std::lock_guard<std::mutex>`. The
/// naming follows the Clang documentation (capability/guarded_by/
/// requires/acquire/release); see docs/STATIC_ANALYSIS.md for the
/// discipline and the CI gate.

#if defined(__clang__) && !defined(SWIG)
#define STS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STS_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a capability (a lockable resource). Argument is the
/// capability kind shown in diagnostics, e.g. STS_CAPABILITY("mutex").
#define STS_CAPABILITY(x) STS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (base::MutexLock).
#define STS_SCOPED_CAPABILITY STS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define STS_GUARDED_BY(x) STS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability
/// (the pointer itself may be read freely).
#define STS_PT_GUARDED_BY(x) STS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it). The caller must hold the lock.
#define STS_REQUIRES(...) \
  STS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define STS_ACQUIRE(...) \
  STS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define STS_RELEASE(...) \
  STS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define STS_TRY_ACQUIRE(...) \
  STS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be entered with the capability held (deadlock
/// prevention for non-reentrant mutexes).
#define STS_EXCLUDES(...) STS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a value guarded by the capability.
#define STS_RETURN_CAPABILITY(x) STS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the invariant holds anyway.
#define STS_NO_THREAD_SAFETY_ANALYSIS \
  STS_THREAD_ANNOTATION(no_thread_safety_analysis)
