#include "datagen/grids.hpp"

#include <random>
#include <stdexcept>
#include <vector>

#include "sparse/types.hpp"

namespace sts::datagen {

namespace {

using sts::Triplet;

void requirePositive(index_t a, index_t b, index_t c = 1) {
  if (a <= 0 || b <= 0 || c <= 0) {
    throw std::invalid_argument("grid generator: dimensions must be positive");
  }
}

}  // namespace

CsrMatrix grid2dLaplacian5(index_t nx, index_t ny) {
  requirePositive(nx, ny);
  const index_t n = nx * ny;
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * 5);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      t.push_back({v, v, 4.0});
      if (x > 0) t.push_back({v, id(x - 1, y), -1.0});
      if (x + 1 < nx) t.push_back({v, id(x + 1, y), -1.0});
      if (y > 0) t.push_back({v, id(x, y - 1), -1.0});
      if (y + 1 < ny) t.push_back({v, id(x, y + 1), -1.0});
    }
  }
  return CsrMatrix::fromTriplets(n, n, t);
}

CsrMatrix grid2dLaplacian9(index_t nx, index_t ny) {
  requirePositive(nx, ny);
  const index_t n = nx * ny;
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * 9);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      t.push_back({v, v, 8.0});
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const index_t xx = x + dx, yy = y + dy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          t.push_back({v, id(xx, yy), -1.0});
        }
      }
    }
  }
  return CsrMatrix::fromTriplets(n, n, t);
}

CsrMatrix grid2dAnisotropic(index_t nx, index_t ny, double eps) {
  requirePositive(nx, ny);
  if (eps <= 0.0) {
    throw std::invalid_argument("grid2dAnisotropic: eps must be positive");
  }
  const index_t n = nx * ny;
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * 5);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      t.push_back({v, v, 2.0 * (1.0 + eps)});
      if (x > 0) t.push_back({v, id(x - 1, y), -1.0});
      if (x + 1 < nx) t.push_back({v, id(x + 1, y), -1.0});
      if (y > 0) t.push_back({v, id(x, y - 1), -eps});
      if (y + 1 < ny) t.push_back({v, id(x, y + 1), -eps});
    }
  }
  return CsrMatrix::fromTriplets(n, n, t);
}

CsrMatrix grid3dLaplacian7(index_t nx, index_t ny, index_t nz) {
  requirePositive(nx, ny, nz);
  const index_t n = nx * ny * nz;
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * 7);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t v = id(x, y, z);
        t.push_back({v, v, 6.0});
        if (x > 0) t.push_back({v, id(x - 1, y, z), -1.0});
        if (x + 1 < nx) t.push_back({v, id(x + 1, y, z), -1.0});
        if (y > 0) t.push_back({v, id(x, y - 1, z), -1.0});
        if (y + 1 < ny) t.push_back({v, id(x, y + 1, z), -1.0});
        if (z > 0) t.push_back({v, id(x, y, z - 1), -1.0});
        if (z + 1 < nz) t.push_back({v, id(x, y, z + 1), -1.0});
      }
    }
  }
  return CsrMatrix::fromTriplets(n, n, t);
}

CsrMatrix grid3dLaplacian27(index_t nx, index_t ny, index_t nz) {
  requirePositive(nx, ny, nz);
  const index_t n = nx * ny * nz;
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * 27);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t v = id(x, y, z);
        t.push_back({v, v, 26.0});
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              t.push_back({v, id(xx, yy, zz), -1.0});
            }
          }
        }
      }
    }
  }
  return CsrMatrix::fromTriplets(n, n, t);
}

CsrMatrix bandedSpd(index_t n, index_t bandwidth, double fill,
                    std::uint64_t seed) {
  if (n < 0 || bandwidth < 0 || fill < 0.0 || fill > 1.0) {
    throw std::invalid_argument("bandedSpd: bad parameters");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> mag(0.01, 1.0);
  std::vector<Triplet> t;
  std::vector<double> row_abs_sum(static_cast<size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const index_t j_lo = std::max<index_t>(0, i - bandwidth);
    for (index_t j = j_lo; j < i; ++j) {
      if (unit(rng) < fill) {
        const double v = mag(rng) * ((rng() & 1) ? 1.0 : -1.0);
        t.push_back({i, j, v});
        t.push_back({j, i, v});
        row_abs_sum[static_cast<size_t>(i)] += std::abs(v);
        row_abs_sum[static_cast<size_t>(j)] += std::abs(v);
      }
    }
  }
  for (index_t i = 0; i < n; ++i) {
    t.push_back({i, i, 1.0 + row_abs_sum[static_cast<size_t>(i)]});
  }
  return CsrMatrix::fromTriplets(n, n, t);
}

}  // namespace sts::datagen
