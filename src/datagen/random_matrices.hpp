#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

/// \file random_matrices.hpp
/// Random lower triangular matrix generators following the paper's recipes:
/// Erdős–Rényi (§6.2.4) and narrow-bandwidth (§6.2.5), plus structured
/// extremes used by tests (chain, diagonal, dense triangle).
///
/// All generators are deterministic in (parameters, seed).
///
/// Value distributions follow §6.2.4: off-diagonal entries uniform in
/// [-2, 2]; |diagonal| log-uniform in [1/2, 2] with a random sign. With
/// `stabilize_values` (default), off-diagonal entries are additionally
/// scaled by 1/max(1, off-diagonal row count): identical sparsity pattern
/// (what scheduling and timing depend on) but bounded solution growth, so
/// long substitution chains cannot overflow to inf/NaN and distort kernels
/// with non-finite arithmetic. See DESIGN.md substitutions.

namespace sts::datagen {

using sparse::CsrMatrix;
using sts::index_t;

struct ErdosRenyiOptions {
  index_t n = 1000;
  /// Each entry (i, j), i > j, is present independently with probability p.
  double p = 1e-3;
  std::uint64_t seed = 1;
  bool stabilize_values = true;
};

/// Lower triangular Erdős–Rényi matrix (full diagonal always present).
CsrMatrix erdosRenyiLower(const ErdosRenyiOptions& opts);

struct NarrowBandOptions {
  index_t n = 1000;
  /// Entry (i, j), i > j, present with probability p * exp((1 + j - i) / b).
  double p = 0.14;
  double b = 10.0;
  std::uint64_t seed = 1;
  bool stabilize_values = true;
};

/// Narrow-bandwidth random lower triangular matrix: hard to parallelize by
/// design (long dependency chains) but with good locality (§6.2.5).
CsrMatrix narrowBandLower(const NarrowBandOptions& opts);

/// Bidiagonal chain: row i depends on row i-1; the worst case for
/// parallelism (a single wavefront per vertex).
CsrMatrix chainLower(index_t n);

/// Diagonal matrix: fully parallel (one wavefront).
CsrMatrix diagonalMatrix(index_t n);

/// Fully dense lower triangle; n kept small by callers.
CsrMatrix denseLower(index_t n);

/// Random banded lower triangular matrix: every entry within `bandwidth`
/// of the diagonal present with probability `fill`.
CsrMatrix bandedLower(index_t n, index_t bandwidth, double fill,
                      std::uint64_t seed);

}  // namespace sts::datagen
