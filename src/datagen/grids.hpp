#pragma once

#include "sparse/csr.hpp"

/// \file grids.hpp
/// Symmetric positive definite grid Laplacians: the stand-in for the
/// paper's SuiteSparse SPD matrices (DESIGN.md substitutions). Finite
/// element / finite difference discretizations are exactly the matrix class
/// the SuiteSparse SPD collection is dominated by; their lower triangles
/// inherit the "well-ordered, moderate wavefront" structure the paper
/// highlights (§3: application matrices are often already ordered superbly
/// with respect to locality).
///
/// All functions return the full symmetric matrix; take .lowerTriangle()
/// for the SpTRSV instance.

namespace sts::datagen {

using sparse::CsrMatrix;
using sts::index_t;

/// 5-point Laplacian on an nx-by-ny grid: diag 4, neighbors -1 (Dirichlet).
CsrMatrix grid2dLaplacian5(index_t nx, index_t ny);

/// 9-point Laplacian (Moore neighborhood): diag 8, 8 neighbors -1.
CsrMatrix grid2dLaplacian9(index_t nx, index_t ny);

/// Anisotropic 5-point operator: horizontal coupling -1, vertical -eps,
/// diag 2(1+eps). Long, thin wavefronts; stresses load balancing.
CsrMatrix grid2dAnisotropic(index_t nx, index_t ny, double eps);

/// 7-point Laplacian on an nx-by-ny-by-nz grid: diag 6, neighbors -1.
CsrMatrix grid3dLaplacian7(index_t nx, index_t ny, index_t nz);

/// 27-point Laplacian: diag 26, full 3x3x3 neighborhood -1. Dense-ish rows
/// like the paper's audikw_1 / Queen_4147 class.
CsrMatrix grid3dLaplacian27(index_t nx, index_t ny, index_t nz);

/// Symmetric diagonally-dominant banded random matrix (SPD): entries in
/// [0.01, 1] magnitude at |i-j| <= bandwidth with probability `fill`,
/// diagonal = 1 + sum of absolute off-diagonal row entries.
CsrMatrix bandedSpd(index_t n, index_t bandwidth, double fill,
                    std::uint64_t seed);

}  // namespace sts::datagen
