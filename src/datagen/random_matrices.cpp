#include "datagen/random_matrices.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace sts::datagen {

namespace {

/// |d| log-uniform in [1/2, 2], sign uniform (§6.2.4; keeps the diagonal
/// away from zero for numerical stability).
double drawDiagonal(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double magnitude = std::exp2(2.0 * unit(rng) - 1.0);  // 2^U[-1,1]
  return (rng() & 1) ? magnitude : -magnitude;
}

double drawOffDiagonal(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  return dist(rng);
}

/// Assembles a lower triangular CSR from per-row off-diagonal column lists,
/// drawing values and appending the diagonal entry last.
CsrMatrix assembleLower(index_t n,
                        const std::vector<std::vector<index_t>>& row_cols,
                        std::mt19937_64& rng, bool stabilize) {
  std::vector<sts::offset_t> row_ptr(static_cast<size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    row_ptr[static_cast<size_t>(i) + 1] =
        row_ptr[static_cast<size_t>(i)] +
        static_cast<sts::offset_t>(row_cols[static_cast<size_t>(i)].size()) + 1;
  }
  std::vector<index_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<size_t>(row_ptr.back()));
  values.reserve(static_cast<size_t>(row_ptr.back()));
  for (index_t i = 0; i < n; ++i) {
    const auto& cols = row_cols[static_cast<size_t>(i)];
    const double scale =
        stabilize ? 1.0 / static_cast<double>(std::max<size_t>(1, cols.size()))
                  : 1.0;
    for (const index_t j : cols) {
      col_idx.push_back(j);
      values.push_back(drawOffDiagonal(rng) * scale);
    }
    col_idx.push_back(i);
    values.push_back(drawDiagonal(rng));
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace

CsrMatrix erdosRenyiLower(const ErdosRenyiOptions& opts) {
  if (opts.n < 0 || opts.p < 0.0 || opts.p > 1.0) {
    throw std::invalid_argument("erdosRenyiLower: bad parameters");
  }
  std::mt19937_64 rng(opts.seed);
  std::vector<std::vector<index_t>> row_cols(static_cast<size_t>(opts.n));
  if (opts.p > 0.0) {
    // Geometric skipping: visit only the Bernoulli successes of each row.
    std::geometric_distribution<index_t> skip(opts.p);
    for (index_t i = 1; i < opts.n; ++i) {
      index_t j = skip(rng);
      while (j < i) {
        row_cols[static_cast<size_t>(i)].push_back(j);
        j += 1 + skip(rng);
      }
    }
  }
  return assembleLower(opts.n, row_cols, rng, opts.stabilize_values);
}

CsrMatrix narrowBandLower(const NarrowBandOptions& opts) {
  if (opts.n < 0 || opts.p < 0.0 || opts.p > 1.0 || opts.b <= 0.0) {
    throw std::invalid_argument("narrowBandLower: bad parameters");
  }
  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  // Probability decays as exp(-(distance-1)/b); beyond this offset it is
  // below 1e-12 and entries can be skipped entirely.
  const auto max_offset = static_cast<index_t>(
      std::ceil(1.0 + opts.b * std::log(std::max(opts.p, 1e-300) * 1e12)));
  std::vector<std::vector<index_t>> row_cols(static_cast<size_t>(opts.n));
  for (index_t i = 1; i < opts.n; ++i) {
    const index_t j_lo = std::max<index_t>(0, i - std::max<index_t>(1, max_offset));
    for (index_t j = j_lo; j < i; ++j) {
      const double prob =
          opts.p * std::exp((1.0 + static_cast<double>(j - i)) / opts.b);
      if (unit(rng) < prob) row_cols[static_cast<size_t>(i)].push_back(j);
    }
  }
  return assembleLower(opts.n, row_cols, rng, opts.stabilize_values);
}

CsrMatrix chainLower(index_t n) {
  std::vector<std::vector<index_t>> row_cols(static_cast<size_t>(n));
  for (index_t i = 1; i < n; ++i) {
    row_cols[static_cast<size_t>(i)].push_back(i - 1);
  }
  std::mt19937_64 rng(7);
  return assembleLower(n, row_cols, rng, true);
}

CsrMatrix diagonalMatrix(index_t n) {
  std::vector<std::vector<index_t>> row_cols(static_cast<size_t>(n));
  std::mt19937_64 rng(11);
  return assembleLower(n, row_cols, rng, true);
}

CsrMatrix denseLower(index_t n) {
  std::vector<std::vector<index_t>> row_cols(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < i; ++j) {
      row_cols[static_cast<size_t>(i)].push_back(j);
    }
  }
  std::mt19937_64 rng(13);
  return assembleLower(n, row_cols, rng, true);
}

CsrMatrix bandedLower(index_t n, index_t bandwidth, double fill,
                      std::uint64_t seed) {
  if (bandwidth < 0 || fill < 0.0 || fill > 1.0) {
    throw std::invalid_argument("bandedLower: bad parameters");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<index_t>> row_cols(static_cast<size_t>(n));
  for (index_t i = 1; i < n; ++i) {
    const index_t j_lo = std::max<index_t>(0, i - bandwidth);
    for (index_t j = j_lo; j < i; ++j) {
      if (unit(rng) < fill) row_cols[static_cast<size_t>(i)].push_back(j);
    }
  }
  return assembleLower(n, row_cols, rng, true);
}

}  // namespace sts::datagen
