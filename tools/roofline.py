#!/usr/bin/env python3
"""Roofline accounting for the tiled multi-RHS solve path.

Reads a consolidated snapshot written by tools/bench_snapshot.py
(`BENCH_<PR>.json`) and reports, per (dataset, storage, nrhs) and per
individual bench row, the achieved-vs-roofline fraction of the tiled
solve: measured time versus the model lower bound

    t_bound = max(flops / peak_flops, bytes_moved / peak_bandwidth)

where flops and bytes_moved come from the bench_tiled_multirhs rows (the
executors' bytesMoved() byte accounting: storage stream once per tile
plus one RHS/solution round trip) and the peaks come from

  * bench_micro_kernels when the snapshot embeds it: peak_flops is twice
    the best items_per_second among the multi-RHS kernel rows (one
    multiply-add per item), and
  * the snapshot's own rows otherwise: peak_flops / peak_bandwidth are
    the best observed flops/s and bytes/s among the tiled rows, so every
    fraction is <= 100% by construction and the report ranks rows
    against the snapshot's own streaming ceiling.

Fractions above 100% mean the solve beat the byte model's bound. That is
*explained* when the row's working set (storage bytes + both RHS/solution
buffers) fits in the detected L3 — the model charges DRAM-stream bytes
the cache never moved — and the row is annotated `cache-resident`
instead of failing. Unexplained >100% rows fail the run: the byte
accounting drifted from the kernels.

Usage:
    python3 tools/roofline.py BENCH_8.json [--quiet]

Exit codes: 0 ok; 1 unexplained >100% fraction; 2 usage, parse, or
schema errors (missing benches/tiled_multirhs payload or row fields —
the CI self-check that the snapshot schema and this tool stay in sync).
"""

import argparse
import json
import math
import sys

ROW_FIELDS = (
    "dataset", "matrix", "executor", "storage", "team", "nrhs",
    "tile_cols", "num_tiles", "rows", "nnz",
    "untiled_seconds", "tiled_seconds", "tiled_speedup",
    "bytes_moved", "flops",
)

# Matches the layout constants in src/exec/tile.hpp.
SIZEOF_DOUBLE = 8
SIZEOF_INDEX = 4
SIZEOF_OFFSET = 8


def fail_schema(message):
    print(f"roofline: schema error: {message}", file=sys.stderr)
    sys.exit(2)


def load_rows(snapshot):
    benches = snapshot.get("benches")
    if not isinstance(benches, dict):
        fail_schema("no 'benches' object (not a bench_snapshot.py snapshot?)")
    tiled = benches.get("tiled_multirhs")
    if not isinstance(tiled, dict):
        fail_schema("benches.tiled_multirhs missing or null "
                    "(snapshot predates the tiled path or the bench failed)")
    rows = tiled.get("results")
    if not isinstance(rows, list) or not rows:
        fail_schema("benches.tiled_multirhs.results missing or empty")
    for i, row in enumerate(rows):
        missing = [f for f in ROW_FIELDS if f not in row]
        if missing:
            fail_schema(f"results[{i}] missing fields: {', '.join(missing)}")
        if row["tiled_seconds"] <= 0 or row["bytes_moved"] <= 0 \
                or row["flops"] <= 0:
            fail_schema(f"results[{i}] has non-positive "
                        "tiled_seconds/bytes_moved/flops")
    return tiled


def micro_peak_flops(snapshot):
    """Peak FLOP rate from the embedded google-benchmark report: the best
    multi-RHS kernel row's items_per_second (one fnma per item => 2
    flops). None when the snapshot has no micro_kernels entry."""
    micro = snapshot.get("benches", {}).get("micro_kernels")
    if not isinstance(micro, dict):
        return None
    best = 0.0
    for row in micro.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        if "MultiRhsKernel" not in row.get("name", ""):
            continue
        best = max(best, float(row.get("items_per_second", 0.0)))
    return 2.0 * best if best > 0.0 else None


def working_set_bytes(row):
    """Bytes the row's solve actually touches once: the storage stream
    plus both the packed RHS and solution buffers."""
    n, nnz, nrhs = row["rows"], row["nnz"], row["nrhs"]
    num_tiles = max(1, row["num_tiles"])
    vector_bytes = 2 * n * nrhs * SIZEOF_DOUBLE
    # bytes_moved = storage_stream * num_tiles + vector round trip; the
    # resident set holds the stream once.
    storage_bytes = (row["bytes_moved"] - vector_bytes) // num_tiles
    return storage_bytes + vector_bytes


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values)) \
        if values else 0.0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot", help="BENCH_<PR>.json snapshot")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-row lines; print only the "
                             "(dataset, storage, nrhs) summary and verdict")
    args = parser.parse_args()

    try:
        with open(args.snapshot) as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"roofline: {err}", file=sys.stderr)
        return 2

    tiled = load_rows(snapshot)
    rows = tiled["results"]
    l3_bytes = int(tiled.get("l3_bytes", 0))
    cache_detected = bool(tiled.get("cache_detected", False))

    peak_flops = micro_peak_flops(snapshot)
    flops_source = "micro_kernels"
    if peak_flops is None:
        peak_flops = max(r["flops"] / r["tiled_seconds"] for r in rows)
        flops_source = "snapshot-best"
    peak_bw = max(r["bytes_moved"] / r["tiled_seconds"] for r in rows)

    print(f"roofline peaks: {peak_flops / 1e9:.2f} GFLOP/s "
          f"({flops_source}), {peak_bw / 1e9:.2f} GB/s "
          f"(snapshot-best stream); "
          f"L3 {l3_bytes / 1e6:.1f} MB "
          f"({'detected' if cache_detected else 'fallback'})\n")

    unexplained = []
    groups = {}
    for row in rows:
        t = row["tiled_seconds"]
        t_bound = max(row["flops"] / peak_flops,
                      row["bytes_moved"] / peak_bw)
        fraction = t_bound / t
        resident = l3_bytes > 0 and working_set_bytes(row) < l3_bytes
        note = ""
        if fraction > 1.0 + 1e-9:
            if resident:
                note = "  [>100%: cache-resident, DRAM byte model undershoots]"
            else:
                note = "  [>100% UNEXPLAINED]"
                unexplained.append(row)
        if not args.quiet:
            print(f"  {row['matrix']:<16} {row['executor']:<10} "
                  f"{row['storage']:<10} team {row['team']:>2} "
                  f"nrhs {row['nrhs']:>3}: {100 * fraction:6.1f}% of "
                  f"roofline ({row['flops'] / t / 1e9:6.2f} GFLOP/s, "
                  f"{row['bytes_moved'] / t / 1e9:6.2f} GB/s)"
                  f"{note}")
        key = (row["dataset"], row["storage"], row["nrhs"])
        groups.setdefault(key, []).append(fraction)

    print("\nachieved-vs-roofline by (dataset, storage, nrhs):")
    for (dataset, storage, nrhs), fractions in sorted(groups.items()):
        print(f"  {dataset:<20} {storage:<10} nrhs {nrhs:>3}: "
              f"geomean {100 * geomean(fractions):6.1f}%  "
              f"best {100 * max(fractions):6.1f}%  "
              f"({len(fractions)} rows)")

    if unexplained:
        print(f"\n{len(unexplained)} row(s) beat the roofline bound with a "
              "working set larger than L3 — the byte accounting has "
              "drifted from the kernels.", file=sys.stderr)
        return 1
    print("\nno unexplained >100% entries.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
