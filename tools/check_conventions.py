#!/usr/bin/env python3
"""Repo-specific convention lints that clang-tidy cannot express.

Five rules, each encoding a contract documented in docs/ (violations have
bitten or would bite silently — none of them is a style preference):

  omp-region-discipline
      Every `#pragma omp parallel` team region in src/exec/*.cpp must
      install a ScopedPin and an obs::StepTracer near the top of the
      region body. A region without the pin silently ignores core-set
      leases (batches overlap cores again); one without the tracer makes
      that region invisible to compute/wait attribution. block.cpp's
      analysis-time `parallel for` loops are exempt (no solve region, no
      per-thread state).

  trace-arg-purity
      No side-effecting expressions (++/--/assignment) inside STS_TRACE_*
      macro arguments. The macros compile away under STS_TRACING=OFF, so a
      side effect in an argument changes program behavior between build
      modes — the classic assert(side_effect()) bug.

  include-hygiene
      src/ headers start with `#pragma once`; no `"../"` relative
      includes anywhere; every quoted include resolves under src/ (the
      single include root CMake exports).

  lock-discipline
      Modules annotated for Clang thread-safety analysis (src/base/,
      src/engine/, src/obs/, src/exec/elastic.hpp) must not use raw
      std::mutex / std::lock_guard / std::unique_lock / std::scoped_lock —
      only the annotated base::Mutex / base::MutexLock wrappers. A raw
      mutex is invisible to the analysis, so a data race behind it would
      pass the `-Werror=thread-safety` CI gate. base/sync.hpp itself is
      exempt (it is the wrapper).

  failpoint-discipline
      Library code (src/, outside src/fault/) must reach fault injection
      ONLY through the STS_FAILPOINT / STS_FAILPOINT_RANK macros or inside
      an explicit `#if STS_FAULTS` region. A direct `fault::` API call
      (FailpointRegistry, Failpoint, InjectedFault, wouldTrigger) at an
      unguarded site compiles into the -DSTS_FAULTS=OFF build too, which
      breaks the docs/ROBUSTNESS.md contract that OFF builds carry zero
      fault-injection code on the solve paths.

Run from anywhere inside the repo:  python3 tools/check_conventions.py
Self-test the rules themselves:    python3 tools/check_conventions.py --self-check
Exit status 0 = clean, 1 = violations (printed one per line).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# How many lines after `#pragma omp parallel` may separate the pragma from
# the pin/tracer setup. The shipped regions install both within a few
# lines; the slack only absorbs comments and the thread-id prologue.
OMP_WINDOW = 15

TRACE_MACROS = ("STS_TRACE_SPAN", "STS_TRACE_SPAN1", "STS_TRACE_SPAN_AT",
                "STS_TRACE_INSTANT")

# ++ / -- / any assignment (plain or compound). `==`, `!=`, `<=`, `>=`,
# `<=>` and `->` must NOT match.
SIDE_EFFECT = re.compile(r"""
    \+\+ | -- |
    (?<![=!<>+\-*/%&|^])=(?![=])      # plain `=`, not ==/!=/<=/>=/compound
    | [+\-*/%&|^]= (?!=)              # compound assignment
    | (?:<<|>>)=
""", re.VERBOSE)

LOCK_DISCIPLINE_MODULES = ("base/", "engine/", "obs/", "fault/")
LOCK_DISCIPLINE_FILES = ("exec/elastic.hpp",)
LOCK_DISCIPLINE_EXEMPT = ("base/sync.hpp", "base/thread_annotations.hpp")
RAW_LOCK = re.compile(
    r"std::(mutex|lock_guard|unique_lock|scoped_lock|shared_mutex)\b")

# Direct fault-injection API tokens; the call-site macros are the only
# sanctioned spelling outside src/fault/ and `#if STS_FAULTS` regions.
FAULT_API = re.compile(
    r"\bfault::|\bFailpointRegistry\b|\bFailpoint\b|\bInjectedFault\b|"
    r"\bwouldTrigger\b")


def strip_comments_and_strings(line: str) -> str:
    """Drops // comments and the contents of string/char literals (keeps
    the quotes so token boundaries survive). Block comments are handled
    line-locally, which is enough for this codebase's style."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            end = line.find("*/", i + 2)
            if end < 0:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def balanced_args(text: str, start: int) -> str | None:
    """The text between the parens opening at text[start] (which must be
    '('), or None if unbalanced within `text`."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
    return None


def check_omp_regions(path: Path, lines: list[str]) -> list[str]:
    errors = []
    for idx, line in enumerate(lines):
        stripped = strip_comments_and_strings(line)
        if "#pragma omp parallel" not in stripped:
            continue
        if re.search(r"#pragma omp parallel\s+for\b", stripped):
            continue  # analysis-time parallel loops carry no solve region
        window = "\n".join(lines[idx:idx + OMP_WINDOW + 1])
        missing = [need for need in ("ScopedPin", "StepTracer")
                   if need not in window]
        if missing:
            errors.append(
                f"{path.relative_to(REPO)}:{idx + 1}: omp-region-discipline: "
                f"parallel region lacks {' and '.join(missing)} within "
                f"{OMP_WINDOW} lines")
    return errors


def check_trace_args(path: Path, lines: list[str]) -> list[str]:
    errors = []
    text = "\n".join(strip_comments_and_strings(l) for l in lines)
    for macro in TRACE_MACROS:
        for m in re.finditer(re.escape(macro) + r"\s*\(", text):
            # Skip the longer macro names when matching a prefix (SPAN vs
            # SPAN1/SPAN_AT) and the #define sites themselves.
            end = m.end() - 1
            tail = text[m.start() + len(macro):m.start() + len(macro) + 1]
            if tail not in ("(", " ", "\t"):
                continue
            line_no = text.count("\n", 0, m.start()) + 1
            if "#define" in text[text.rfind("\n", 0, m.start()) + 1:m.start()]:
                continue
            args = balanced_args(text, end)
            if args is None:
                continue
            hit = SIDE_EFFECT.search(args)
            if hit:
                errors.append(
                    f"{path.relative_to(REPO)}:{line_no}: trace-arg-purity: "
                    f"side effect '{hit.group(0)}' inside {macro} arguments "
                    f"(compiled away under STS_TRACING=OFF)")
    return errors


def check_includes(path: Path, lines: list[str]) -> list[str]:
    errors = []
    rel = path.relative_to(REPO)
    if path.suffix == ".hpp" and path.is_relative_to(SRC):
        first_code = next(
            (l for l in lines
             if l.strip() and not l.strip().startswith(("//", "/*", "*"))),
            "")
        if first_code.strip() != "#pragma once":
            errors.append(f"{rel}:1: include-hygiene: src/ header must open "
                          f"with #pragma once")
    for idx, line in enumerate(lines):
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
        if not m:
            continue
        inc = m.group(1)
        if inc.startswith("../") or "/../" in inc:
            errors.append(f"{rel}:{idx + 1}: include-hygiene: relative "
                          f"'../' include \"{inc}\"")
        elif path.is_relative_to(SRC) and not (SRC / inc).exists():
            errors.append(f"{rel}:{idx + 1}: include-hygiene: \"{inc}\" does "
                          f"not resolve under src/")
    return errors


def check_lock_discipline(path: Path, lines: list[str]) -> list[str]:
    rel = path.relative_to(REPO)
    rel_src = path.relative_to(SRC).as_posix() if path.is_relative_to(SRC) else ""
    if not rel_src or rel_src in LOCK_DISCIPLINE_EXEMPT:
        return []
    if not (rel_src.startswith(LOCK_DISCIPLINE_MODULES)
            or rel_src in LOCK_DISCIPLINE_FILES):
        return []
    errors = []
    for idx, line in enumerate(lines):
        hit = RAW_LOCK.search(strip_comments_and_strings(line))
        if hit:
            errors.append(
                f"{rel}:{idx + 1}: lock-discipline: raw {hit.group(0)} in an "
                f"annotated module; use base::Mutex / base::MutexLock "
                f"(base/sync.hpp)")
    return errors


def check_failpoint_discipline(path: Path, lines: list[str]) -> list[str]:
    rel = path.relative_to(REPO)
    rel_src = path.relative_to(SRC).as_posix() if path.is_relative_to(SRC) else ""
    if not rel_src or rel_src.startswith("fault/"):
        return []
    errors = []
    # Preprocessor-conditional stack: True for frames opened by the
    # `#if STS_FAULTS` gate (direct API use is sanctioned there).
    gate_stack: list[bool] = []
    for idx, line in enumerate(lines):
        directive = line.strip()
        if directive.startswith("#if"):
            gate_stack.append("STS_FAULTS" in directive)
            continue
        if directive.startswith("#endif"):
            if gate_stack:
                gate_stack.pop()
            continue
        if directive.startswith(("#else", "#elif")):
            if gate_stack:
                gate_stack[-1] = "STS_FAULTS" in directive
            continue
        if any(gate_stack):
            continue
        if re.match(r"\s*#\s*include", line):
            continue  # including the macro header is the sanctioned entry
        hit = FAULT_API.search(strip_comments_and_strings(line))
        if hit:
            errors.append(
                f"{rel}:{idx + 1}: failpoint-discipline: direct "
                f"'{hit.group(0)}' outside src/fault/; use STS_FAILPOINT / "
                f"STS_FAILPOINT_RANK or guard with #if STS_FAULTS")
    return errors


def run(paths: list[Path]) -> list[str]:
    errors = []
    for path in paths:
        lines = path.read_text(encoding="utf-8").splitlines()
        if path.is_relative_to(SRC / "exec") and path.suffix == ".cpp":
            errors += check_omp_regions(path, lines)
        errors += check_trace_args(path, lines)
        errors += check_includes(path, lines)
        errors += check_lock_discipline(path, lines)
        errors += check_failpoint_discipline(path, lines)
    return errors


# --------------------------------------------------------------------------
# Self-check: each fixture is (description, virtual path, source, expected
# rule name or None). Guards the checker against silently rotting — CI runs
# it before trusting a clean report.

FIXTURES = [
    ("omp region with pin+tracer passes", "src/exec/fix.cpp", """
#pragma omp parallel num_threads(team)
  {
    const ScopedPin pin(pin_set, t);
    obs::StepTracer tracer(sink);
  }
""", None),
    ("omp region missing both flags", "src/exec/fix.cpp", """
#pragma omp parallel num_threads(team)
  {
    work();
  }
""", "omp-region-discipline"),
    ("omp parallel for is exempt", "src/exec/fix.cpp", """
#pragma omp parallel for schedule(dynamic, 1)
  for (int i = 0; i < n; ++i) work(i);
""", None),
    ("pure trace args pass", "src/exec/fix.cpp", """
STS_TRACE_SPAN1("engine", "solve", "team", static_cast<std::uint64_t>(team));
""", None),
    ("increment inside trace args", "src/exec/fix.cpp", """
STS_TRACE_INSTANT("engine", "submit", "n", counter++);
""", "trace-arg-purity"),
    ("assignment inside trace args", "src/exec/fix.cpp", """
STS_TRACE_SPAN1("a", "b", "k", total = next);
""", "trace-arg-purity"),
    ("comparisons inside trace args pass", "src/exec/fix.cpp", """
STS_TRACE_SPAN1("a", "b", "k", x <= y && u == v && p->q);
""", None),
    ("header without pragma once", "src/exec/fix.hpp", """
#include <vector>
""", "include-hygiene"),
    ("relative include", "src/exec/fix.cpp", """
#include "../core/schedule.hpp"
""", "include-hygiene"),
    ("unresolvable quoted include", "src/exec/fix.cpp", """
#include "no/such/header.hpp"
""", "include-hygiene"),
    ("raw mutex in annotated module", "src/engine/fix.hpp", """
#pragma once
#include <mutex>
std::mutex mu_;
""", "lock-discipline"),
    ("base::Mutex in annotated module passes", "src/engine/fix.cpp", """
base::MutexLock lock(mu_);
""", None),
    ("raw mutex outside annotated modules passes", "src/harness/fix.cpp", """
std::mutex mu;
""", None),
    ("direct fault API outside src/fault/", "src/engine/fix.cpp", """
sts::fault::FailpointRegistry::global().configure("x=fail");
""", "failpoint-discipline"),
    ("fault API under #if STS_FAULTS passes", "src/engine/fix.cpp", """
#if STS_FAULTS
sts::fault::FailpointRegistry::global().reset();
#endif
""", None),
    ("failpoint macros pass anywhere", "src/exec/fix2.cpp", """
STS_FAILPOINT("exec.slab_build");
STS_FAILPOINT_RANK("exec.superstep", t);
""", None),
    ("fault API inside src/fault/ passes", "src/fault/fix.cpp", """
Failpoint& point = FailpointRegistry::global().failpoint(name);
""", None),
]


def self_check() -> int:
    import tempfile
    failures = 0
    for desc, vpath, source, expect in FIXTURES:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            # Re-root the checker onto the fixture tree.
            global REPO, SRC
            old_repo, old_src = REPO, SRC
            REPO, SRC = root, root / "src"
            try:
                target = root / vpath
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(source, encoding="utf-8")
                errors = run([target])
            finally:
                REPO, SRC = old_repo, old_src
        rules = {e.split(": ", 2)[1].rstrip(":") for e in errors}
        ok = (expect in rules) if expect else not errors
        print(f"{'PASS' if ok else 'FAIL'}: {desc}"
              + ("" if ok else f" -> {errors or 'no findings'}"))
        failures += 0 if ok else 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-check", action="store_true",
                        help="run the embedded rule fixtures instead")
    args = parser.parse_args()
    if args.self_check:
        return self_check()

    paths = sorted(p for p in SRC.rglob("*")
                   if p.suffix in (".hpp", ".cpp"))
    errors = run(paths)
    for e in errors:
        print(e)
    if not errors:
        print(f"check_conventions: {len(paths)} files clean")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
