#!/usr/bin/env python3
"""Fail on intra-repo markdown links that point at missing files.

Scans every tracked *.md under the repo root for inline links
`[text](target)` and checks that relative targets resolve to an existing
file or directory (anchors are stripped; absolute URLs and mailto are
ignored). Exit code 1 with a per-link report when anything is broken —
the CI docs job runs this so README/docs refactors cannot silently orphan
a reference.

Usage: tools/check_markdown_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

# Inline markdown links; the target must not contain whitespace (bare
# citation brackets like [AS89] have no following parenthesis and never
# match).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {"build", ".git", ".claude"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    broken = []
    checked = 0
    for md in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS or part.startswith("build")
               for part in md.relative_to(root).parts):
            continue
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                checked += 1
                resolved = (root / path[1:]) if path.startswith("/") \
                    else (md.parent / path)
                if not resolved.exists():
                    broken.append(
                        f"{md.relative_to(root)}:{lineno}: "
                        f"broken link -> {target}")
    for line in broken:
        print(line)
    print(f"checked {checked} intra-repo links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
