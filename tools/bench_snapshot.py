#!/usr/bin/env python3
"""Consolidated performance snapshot of the perf-critical benches.

Runs bench_micro_kernels (google-benchmark JSON), bench_fold_policies,
bench_slab_locality, bench_tiled_multirhs, bench_ssp_staleness and
bench_overload_resilience (their `JSON: ` payload lines) and writes one
consolidated snapshot file — by convention `BENCH_<PR>.json` at the repo
root — so the perf trajectory of the hot paths is versioned alongside the
code that produced it. Schema in docs/BENCHMARKS.md.

Usage:
    python3 tools/bench_snapshot.py --out BENCH_5.json [--build-dir build]
                                    [--scale 0.05] [--reps 3]

--out is required and names the snapshot (BENCH_<PR>.json by convention,
one per PR) so a rerun cannot silently clobber a previous PR's committed
baseline.

--scale/--reps set STS_BENCH_SCALE / STS_BENCH_REPS (and the per-bench
rep knobs) for every bench; omit them to inherit the environment. Exits
nonzero if a required bench fails or emits no JSON payload.
bench_micro_kernels is optional (it needs Google Benchmark at build
time): when the binary is missing its entry is null and a note is
recorded.
"""

import argparse
import json
import os
import subprocess
import sys

REQUIRED_BENCHES = ["bench_fold_policies", "bench_slab_locality",
                    "bench_tiled_multirhs", "bench_ssp_staleness",
                    "bench_overload_resilience"]
OPTIONAL_BENCHES = ["bench_micro_kernels"]


def run_json_line_bench(binary, env):
    """Run a bench that prints a single `JSON: {...}` line; return the
    parsed payload. Raises RuntimeError on nonzero exit or missing/bad
    payload."""
    proc = subprocess.run([binary], env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise RuntimeError(f"{binary} exited {proc.returncode}")
    for line in proc.stdout.splitlines():
        if line.startswith("JSON: "):
            return json.loads(line[len("JSON: "):])
    raise RuntimeError(f"{binary} printed no 'JSON: ' payload line")


def run_google_benchmark(binary, env):
    """Run a google-benchmark binary in JSON mode; return the parsed
    report."""
    proc = subprocess.run(
        [binary, "--benchmark_format=json"], env=env, capture_output=True,
        text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise RuntimeError(f"{binary} exited {proc.returncode}")
    return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding the bench "
                             "binaries (default: build)")
    parser.add_argument("--out", required=True,
                        help="output snapshot path (BENCH_<PR>.json by "
                             "convention; required so reruns cannot "
                             "silently overwrite an earlier PR's baseline)")
    parser.add_argument("--scale", default=None,
                        help="STS_BENCH_SCALE for all benches")
    parser.add_argument("--reps", default=None,
                        help="timing repetitions (STS_BENCH_REPS and the "
                             "per-bench *_REPS knobs)")
    args = parser.parse_args()

    env = dict(os.environ)
    if args.scale is not None:
        env["STS_BENCH_SCALE"] = str(args.scale)
    if args.reps is not None:
        env["STS_BENCH_REPS"] = str(args.reps)
        env.setdefault("STS_FOLD_REPS", str(args.reps))
        env.setdefault("STS_SLAB_REPS", str(args.reps))
        env.setdefault("STS_TILED_REPS", str(args.reps))
        env.setdefault("STS_SSP_REPS", str(args.reps))
        # Quick-snapshot mode also trims the open-loop overload phase.
        env.setdefault("STS_OVERLOAD_REQUESTS", "48")

    snapshot = {
        "snapshot": os.path.splitext(os.path.basename(args.out))[0],
        "generated_by": "tools/bench_snapshot.py",
        "scale": env.get("STS_BENCH_SCALE"),
        "reps": env.get("STS_BENCH_REPS"),
        "benches": {},
        "notes": [],
    }

    failures = 0
    for bench in REQUIRED_BENCHES:
        binary = os.path.join(args.build_dir, bench)
        key = bench.removeprefix("bench_")
        if not os.path.exists(binary):
            snapshot["benches"][key] = None
            snapshot["notes"].append(f"{bench}: binary not found in "
                                     f"{args.build_dir}")
            failures += 1
            continue
        try:
            snapshot["benches"][key] = run_json_line_bench(binary, env)
            print(f"{bench}: ok")
        except (RuntimeError, json.JSONDecodeError) as err:
            snapshot["benches"][key] = None
            snapshot["notes"].append(f"{bench}: {err}")
            failures += 1

    for bench in OPTIONAL_BENCHES:
        binary = os.path.join(args.build_dir, bench)
        key = bench.removeprefix("bench_")
        if not os.path.exists(binary):
            snapshot["benches"][key] = None
            snapshot["notes"].append(f"{bench}: not built (Google Benchmark "
                                     "missing at configure time); skipped")
            print(f"{bench}: skipped (not built)")
            continue
        try:
            snapshot["benches"][key] = run_google_benchmark(binary, env)
            print(f"{bench}: ok")
        except (RuntimeError, json.JSONDecodeError) as err:
            snapshot["benches"][key] = None
            snapshot["notes"].append(f"{bench}: {err}")
            failures += 1

    # Lift the host fields of the first JSON-line bench to the top level
    # so cross-snapshot tooling need not dig per bench.
    for key in ("fold_policies", "slab_locality", "tiled_multirhs",
                "ssp_staleness"):
        payload = snapshot["benches"].get(key)
        if payload:
            snapshot["host"] = {
                "hardware_cores": payload.get("hardware_cores"),
                "omp_max_threads": payload.get("omp_max_threads"),
            }
            break

    with open(args.out, "w") as out:
        json.dump(snapshot, out, indent=1, sort_keys=False)
        out.write("\n")
    print(f"wrote {args.out} ({failures} failure(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
