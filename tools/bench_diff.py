#!/usr/bin/env python3
"""Compare two bench snapshots and gate on regressions.

Inputs are either consolidated snapshots written by tools/bench_snapshot.py
(`BENCH_<PR>.json`, schema in docs/BENCHMARKS.md) or raw google-benchmark
JSON reports (`--benchmark_format=json` output). The two formats are
auto-detected and may be mixed: a snapshot embeds a google-benchmark
report under benches.micro_kernels, so `BENCH_5.json` vs a fresh
micro-kernel report compares the overlapping rows.

Every numeric metric present in BOTH files is flattened to a stable key
(e.g. `fold_policies/fold/nb_p14_b10_A/GrowLocal/team2/modulo_makespan`,
`micro_kernels/BM_BspSolve/2/real_time`) and reported with its relative
delta. Metrics have a direction: times/seconds/makespans regress when
they grow, speedups/throughputs regress when they shrink, and everything
else is informational (printed, never gated).

Usage:
    python3 tools/bench_diff.py BASELINE.json CANDIDATE.json
            [--threshold 0.10] [--filter REGEX] [--all]

    # CI overhead gate: tracing compiled in (idle) must stay within 2%
    # of the compiled-out build on the BSP solve row:
    python3 tools/bench_diff.py off.json on.json \
            --filter 'BM_BspSolveTraceIdle' --threshold 0.02

Exits 1 when any gated metric regresses past --threshold, 2 on usage or
parse errors, 0 otherwise. `--filter` restricts BOTH reporting and gating
to keys matching the regex; `--all` prints every compared metric instead
of only the regressions/improvements beyond the threshold.
"""

import argparse
import json
import re
import sys

# Key suffixes where a LARGER candidate value is a regression.
LOWER_IS_BETTER = (
    "_seconds", "_ms", "_time", "real_time", "cpu_time", "makespan",
    "migrated_threads", "dropped_events",
)
# Key suffixes where a SMALLER candidate value is a regression.
HIGHER_IS_BETTER = (
    "speedup", "_per_second", "items_per_second", "bytes_per_second",
)


def direction(key):
    """'down' (lower better), 'up' (higher better) or None (info only)."""
    leaf = key.rsplit("/", 1)[-1]
    if leaf.endswith(LOWER_IS_BETTER):
        return "down"
    if leaf.endswith(HIGHER_IS_BETTER):
        return "up"
    return None


def flatten_google_benchmark(report, prefix):
    """google-benchmark JSON -> {key: value} for the timing fields.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped in favor of the plain iteration rows, matching how the
    snapshots are generated (no repetitions)."""
    out = {}
    for row in report.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name", "")
        for field in ("real_time", "cpu_time", "items_per_second",
                      "bytes_per_second"):
            if field in row:
                out[f"{prefix}{name}/{field}"] = float(row[field])
    return out


def flatten_rows(rows, prefix, id_fields):
    """List-of-dicts bench payloads -> {key: value}. The row identity is
    the concatenation of its id_fields; every other numeric field is a
    metric."""
    out = {}
    for row in rows:
        ident = "/".join(
            f"{f[0]}{row[f[1]]}" if f[0] else str(row[f[1]])
            for f in id_fields if f[1] in row)
        for field, value in row.items():
            if field in {f[1] for f in id_fields}:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"{prefix}{ident}/{field}"] = float(value)
    return out


def flatten_snapshot(snapshot):
    out = {}
    benches = snapshot.get("benches", {})
    fold = benches.get("fold_policies") or {}
    out.update(flatten_rows(fold.get("fold", []), "fold_policies/fold/",
                            [("", "matrix"), ("", "scheduler"),
                             ("team", "team")]))
    out.update(flatten_rows(fold.get("serving", []),
                            "fold_policies/serving/",
                            [("", "matrix"), ("", "scheduler")]))
    out.update(flatten_rows(fold.get("fold_aware", []),
                            "fold_policies/fold_aware/",
                            [("", "matrix")]))
    slab = benches.get("slab_locality") or {}
    out.update(flatten_rows(slab.get("results", []), "slab_locality/",
                            [("", "matrix"), ("", "executor"),
                             ("team", "team"), ("nrhs", "nrhs")]))
    tiled = benches.get("tiled_multirhs") or {}
    out.update(flatten_rows(tiled.get("results", []), "tiled_multirhs/",
                            [("", "matrix"), ("", "executor"),
                             ("", "storage"), ("team", "team"),
                             ("nrhs", "nrhs")]))
    ssp = benches.get("ssp_staleness") or {}
    out.update(flatten_rows(ssp.get("results", []), "ssp_staleness/",
                            [("", "matrix"), ("", "executor"),
                             ("team", "team"), ("s", "staleness")]))
    overload = benches.get("overload_resilience") or {}
    out.update(flatten_rows(overload.get("results", []),
                            "overload_resilience/", [("", "matrix")]))
    micro = benches.get("micro_kernels")
    if micro:
        out.update(flatten_google_benchmark(micro, "micro_kernels/"))
    return out


def flatten(doc):
    """Auto-detect the file format and flatten to {key: value}."""
    if "benches" in doc:
        return flatten_snapshot(doc)
    if "benchmarks" in doc:
        return flatten_google_benchmark(doc, "micro_kernels/")
    raise ValueError("unrecognized bench JSON: expected a "
                     "tools/bench_snapshot.py snapshot ('benches') or a "
                     "google-benchmark report ('benchmarks')")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline bench JSON")
    parser.add_argument("candidate", help="candidate bench JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression gate on directional "
                             "metrics (default 0.10 = 10%%)")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only compare metric keys matching this regex")
    parser.add_argument("--all", action="store_true",
                        help="print every compared metric, not only the "
                             "ones beyond the threshold")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            base = flatten(json.load(f))
        with open(args.candidate) as f:
            cand = flatten(json.load(f))
    except (OSError, ValueError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    keys = sorted(base.keys() & cand.keys())
    if args.filter:
        pattern = re.compile(args.filter)
        keys = [k for k in keys if pattern.search(k)]
    if not keys:
        print("bench_diff: no overlapping metrics to compare "
              f"({len(base)} baseline, {len(cand)} candidate"
              f"{', filter=' + args.filter if args.filter else ''})",
              file=sys.stderr)
        return 2

    regressions = []
    printed = 0
    for key in keys:
        old, new = base[key], cand[key]
        delta = (new - old) / old if old != 0.0 else float("inf") \
            if new != 0.0 else 0.0
        dirn = direction(key)
        regressed = dirn == "down" and delta > args.threshold or \
            dirn == "up" and -delta > args.threshold
        improved = dirn == "down" and -delta > args.threshold or \
            dirn == "up" and delta > args.threshold
        if regressed:
            regressions.append(key)
        if args.all or regressed or improved:
            tag = ("REGRESSED" if regressed else
                   "improved" if improved else
                   "ok" if dirn else "info")
            print(f"{tag:>9}  {delta:+8.1%}  {key}  "
                  f"({old:.6g} -> {new:.6g})")
            printed += 1

    gated = sum(1 for k in keys if direction(k))
    print(f"\ncompared {len(keys)} metrics ({gated} gated at "
          f"{args.threshold:.0%}); {len(regressions)} regression(s)"
          + ("" if printed else "; all within threshold"))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
